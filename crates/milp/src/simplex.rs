//! Dense two-phase primal simplex with bounded variables.
//!
//! The LP relaxations produced by `qr-core` have many variables whose only
//! bound structure is `0 <= x <= u` (binary relaxations, rank variables,
//! error variables). Handling bounds natively — rather than as extra rows —
//! keeps the tableau at `m × (n + m)` and makes the solver fast enough for
//! the instance sizes in the benchmark.
//!
//! The implementation is a textbook bounded-variable primal simplex:
//!
//! * every constraint becomes an equality by adding a slack with the
//!   appropriate sign bounds (`<=` → slack in `[0, ∞)`, `>=` → `(-∞, 0]`,
//!   `==` → no slack),
//! * an artificial variable per row provides the initial basis; phase 1
//!   minimises the total artificial magnitude, phase 2 the true objective,
//! * entering variables are chosen by the Dantzig rule with a Bland's-rule
//!   fallback to guarantee termination, and the ratio test supports bound
//!   flips.

use crate::error::{MilpError, Result};
use crate::model::{Model, Sense};

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints admit no feasible point (within tolerances).
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The iteration limit was hit before convergence.
    IterationLimit,
}

/// Result of solving an LP relaxation.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Solve status.
    pub status: LpStatus,
    /// Objective value (meaningful for `Optimal`).
    pub objective: f64,
    /// Values of the model's structural variables, indexed by [`crate::model::VarId`] index.
    pub values: Vec<f64>,
    /// Number of simplex pivots performed (both phases).
    pub iterations: usize,
}

/// Feasibility tolerance used throughout the solver.
pub const FEAS_TOL: f64 = 1e-7;
/// Reduced-cost (optimality) tolerance.
const COST_TOL: f64 = 1e-9;
/// Pivot element magnitude below which a pivot is rejected.
const PIVOT_TOL: f64 = 1e-10;

#[derive(Debug, Clone, Copy, PartialEq)]
enum ColStatus {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Free variable (both bounds infinite), currently at value 0.
    Free,
}

/// The LP relaxation of a [`Model`] with (possibly tightened) variable bounds.
pub struct LpProblem {
    /// Number of structural variables.
    n_struct: usize,
    /// Total number of columns (structural + slack + artificial).
    n_cols: usize,
    /// Number of rows.
    n_rows: usize,
    /// Dense row-major constraint matrix, `n_rows * n_cols`.
    matrix: Vec<f64>,
    /// Right-hand sides.
    rhs: Vec<f64>,
    /// Lower bounds per column.
    lower: Vec<f64>,
    /// Upper bounds per column.
    upper: Vec<f64>,
    /// Phase-2 objective per column.
    objective: Vec<f64>,
    /// Constant term of the phase-2 objective.
    objective_constant: f64,
    /// Index of the first artificial column.
    first_artificial: usize,
}

impl LpProblem {
    /// Build the LP relaxation of `model`, overriding variable bounds with
    /// `lower` / `upper` (as tightened by presolve or branching).
    pub fn from_model(model: &Model, lower: &[f64], upper: &[f64]) -> Result<Self> {
        model.validate()?;
        let n_struct = model.num_variables();
        let n_rows = model.num_constraints();
        let n_slacks = model
            .constraints()
            .iter()
            .filter(|c| !matches!(c.sense, Sense::Eq))
            .count();
        let n_cols = n_struct + n_slacks + n_rows;
        let first_artificial = n_struct + n_slacks;

        let mut matrix = vec![0.0; n_rows * n_cols];
        let mut rhs = vec![0.0; n_rows];
        let mut col_lower = vec![0.0; n_cols];
        let mut col_upper = vec![0.0; n_cols];
        col_lower[..n_struct].copy_from_slice(&lower[..n_struct]);
        col_upper[..n_struct].copy_from_slice(&upper[..n_struct]);

        let mut objective = vec![0.0; n_cols];
        for (v, c) in model.objective().terms() {
            objective[v.index()] = c;
        }
        let objective_constant = model.objective().constant_part();

        let mut slack_cursor = n_struct;
        for (i, cons) in model.constraints().iter().enumerate() {
            for (v, c) in cons.expr.terms() {
                matrix[i * n_cols + v.index()] = c;
            }
            rhs[i] = cons.rhs;
            match cons.sense {
                Sense::Le => {
                    matrix[i * n_cols + slack_cursor] = 1.0;
                    col_lower[slack_cursor] = 0.0;
                    col_upper[slack_cursor] = f64::INFINITY;
                    slack_cursor += 1;
                }
                Sense::Ge => {
                    matrix[i * n_cols + slack_cursor] = 1.0;
                    col_lower[slack_cursor] = f64::NEG_INFINITY;
                    col_upper[slack_cursor] = 0.0;
                    slack_cursor += 1;
                }
                Sense::Eq => {}
            }
            // Artificial column for this row (bounds fixed once the initial
            // residual is known, in `solve`).
            matrix[i * n_cols + first_artificial + i] = 1.0;
        }

        Ok(LpProblem {
            n_struct,
            n_cols,
            n_rows,
            matrix,
            rhs,
            lower: col_lower,
            upper: col_upper,
            objective,
            objective_constant,
            first_artificial,
        })
    }

    #[inline]
    fn a(&self, row: usize, col: usize) -> f64 {
        self.matrix[row * self.n_cols + col]
    }

    /// Solve the LP with the two-phase bounded simplex.
    pub fn solve(&self, max_iterations: usize) -> Result<LpSolution> {
        let m = self.n_rows;
        let n = self.n_cols;

        // Working tableau: starts as a copy of the constraint matrix and is
        // transformed in place by pivots so that basic columns stay unit.
        let mut tab = self.matrix.clone();
        let mut lower = self.lower.clone();
        let mut upper = self.upper.clone();

        // Initial nonbasic statuses for structural + slack columns.
        let mut status = vec![ColStatus::AtLower; n];
        #[allow(clippy::needless_range_loop)]
        for j in 0..self.first_artificial {
            status[j] = initial_status(lower[j], upper[j]);
        }

        // Residuals determine the initial basis: the row's slack when it can
        // absorb the residual within its own bounds (a "crash" basis that
        // avoids most artificials), otherwise the row's artificial.
        let mut basis = vec![0usize; m];
        let mut x_basic = vec![0.0; m];
        let mut phase1_cost = vec![0.0; n];
        let mut slack_cursor = self.n_struct;
        for i in 0..m {
            // Residual over the structural columns only (slack of row i is
            // nonbasic at 0 for this computation and no other slack appears
            // in row i).
            let mut residual = self.rhs[i];
            for j in 0..self.n_struct {
                let v = nonbasic_value(status[j], lower[j], upper[j]);
                residual -= self.a(i, j) * v;
            }
            // Does this row have a slack, and can it hold the residual?
            let slack_col = if self.a(i, slack_cursor.min(n - 1)) == 1.0
                && slack_cursor < self.first_artificial
            {
                Some(slack_cursor)
            } else {
                None
            };
            let art = self.first_artificial + i;
            let slack_feasible = slack_col
                .map(|s| residual >= lower[s] - 1e-12 && residual <= upper[s] + 1e-12)
                .unwrap_or(false);
            if let (Some(s), true) = (slack_col, slack_feasible) {
                basis[i] = s;
                status[s] = ColStatus::Basic(i);
                x_basic[i] = residual;
                // The artificial of this row is never needed: pin it at zero.
                lower[art] = 0.0;
                upper[art] = 0.0;
                status[art] = ColStatus::AtLower;
            } else {
                basis[i] = art;
                status[art] = ColStatus::Basic(i);
                x_basic[i] = residual;
                if residual >= 0.0 {
                    lower[art] = 0.0;
                    upper[art] = f64::INFINITY;
                    phase1_cost[art] = 1.0;
                } else {
                    lower[art] = f64::NEG_INFINITY;
                    upper[art] = 0.0;
                    phase1_cost[art] = -1.0;
                }
            }
            if slack_col.is_some() {
                slack_cursor += 1;
            }
        }

        let mut iterations = 0usize;

        // Phase 1: minimise total artificial magnitude.
        let status1 = simplex_phase(
            &mut tab,
            &mut x_basic,
            &mut basis,
            &mut status,
            &lower,
            &upper,
            &phase1_cost,
            n,
            m,
            max_iterations,
            &mut iterations,
        )?;
        if status1 == LpStatus::IterationLimit {
            return Ok(LpSolution {
                status: LpStatus::IterationLimit,
                objective: f64::INFINITY,
                values: vec![0.0; self.n_struct],
                iterations,
            });
        }
        let phase1_obj: f64 = (0..n)
            .map(|j| phase1_cost[j] * column_value(j, &status, &x_basic, &lower, &upper))
            .sum();
        if phase1_obj > 1e-6 {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                objective: f64::INFINITY,
                values: vec![0.0; self.n_struct],
                iterations,
            });
        }

        // Fix artificials to zero for phase 2 so they can never re-enter with
        // a non-zero value.
        let mut lower2 = lower;
        let mut upper2 = upper;
        for i in 0..m {
            let art = self.first_artificial + i;
            lower2[art] = 0.0;
            upper2[art] = 0.0;
            // A basic artificial sitting at zero is harmless; a nonbasic one
            // must be recorded as being at a bound.
            if !matches!(status[art], ColStatus::Basic(_)) {
                status[art] = ColStatus::AtLower;
            }
        }

        // Phase 2: minimise the true objective.
        let status2 = simplex_phase(
            &mut tab,
            &mut x_basic,
            &mut basis,
            &mut status,
            &lower2,
            &upper2,
            &self.objective,
            n,
            m,
            max_iterations,
            &mut iterations,
        )?;

        let mut values = vec![0.0; self.n_struct];
        #[allow(clippy::needless_range_loop)]
        for j in 0..self.n_struct {
            values[j] = column_value(j, &status, &x_basic, &lower2, &upper2);
        }
        let objective = self.objective_constant
            + (0..self.n_struct).map(|j| self.objective[j] * values[j]).sum::<f64>();

        let status = match status2 {
            LpStatus::Optimal => LpStatus::Optimal,
            other => other,
        };
        Ok(LpSolution { status, objective, values, iterations })
    }
}

fn initial_status(lower: f64, upper: f64) -> ColStatus {
    if lower.is_finite() {
        ColStatus::AtLower
    } else if upper.is_finite() {
        ColStatus::AtUpper
    } else {
        ColStatus::Free
    }
}

fn nonbasic_value(status: ColStatus, lower: f64, upper: f64) -> f64 {
    match status {
        ColStatus::AtLower => lower,
        ColStatus::AtUpper => upper,
        ColStatus::Free => 0.0,
        ColStatus::Basic(_) => unreachable!("nonbasic_value called on basic column"),
    }
}

fn column_value(col: usize, status: &[ColStatus], x_basic: &[f64], lower: &[f64], upper: &[f64]) -> f64 {
    match status[col] {
        ColStatus::Basic(row) => x_basic[row],
        ColStatus::AtLower => lower[col],
        ColStatus::AtUpper => upper[col],
        ColStatus::Free => 0.0,
    }
}

/// Run one simplex phase to optimality (w.r.t. `cost`), mutating the tableau,
/// basis and statuses in place.
#[allow(clippy::too_many_arguments)]
fn simplex_phase(
    tab: &mut [f64],
    x_basic: &mut [f64],
    basis: &mut [usize],
    status: &mut [ColStatus],
    lower: &[f64],
    upper: &[f64],
    cost: &[f64],
    n: usize,
    m: usize,
    max_iterations: usize,
    iterations: &mut usize,
) -> Result<LpStatus> {
    // Reduced-cost row, kept consistent by pivoting.
    let mut reduced: Vec<f64> = compute_reduced_costs(tab, basis, cost, n, m);
    let bland_threshold = 20 * (n + m) + 2000;
    let mut phase_iters = 0usize;
    // Anti-cycling: after a run of degenerate (zero-step) pivots, entering
    // columns are picked pseudo-randomly among the improving candidates
    // instead of by the Dantzig rule, which breaks the stalling patterns the
    // big-M refinement LPs otherwise exhibit.
    let mut degenerate_streak = 0usize;
    let mut rng_state: u64 = 0x9E37_79B9_7F4A_7C15;

    loop {
        if *iterations >= max_iterations {
            return Ok(LpStatus::IterationLimit);
        }
        *iterations += 1;
        phase_iters += 1;
        let use_bland = phase_iters > bland_threshold;
        let randomize = !use_bland && degenerate_streak > 8;

        // --- Pricing: pick an entering column and a direction. ---
        let mut entering: Option<(usize, f64, f64)> = None; // (col, direction, score)
        let mut improving_count = 0usize;
        for j in 0..n {
            let d = reduced[j];
            let (dir, improving) = match status[j] {
                ColStatus::Basic(_) => continue,
                ColStatus::AtLower => (1.0, d < -COST_TOL),
                ColStatus::AtUpper => (-1.0, d > COST_TOL),
                ColStatus::Free => {
                    if d < -COST_TOL {
                        (1.0, true)
                    } else if d > COST_TOL {
                        (-1.0, true)
                    } else {
                        (1.0, false)
                    }
                }
            };
            if !improving {
                continue;
            }
            improving_count += 1;
            let score = d.abs();
            if use_bland {
                entering = Some((j, dir, score));
                break;
            }
            if randomize {
                // Reservoir-sample one improving column uniformly.
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                if entering.is_none() || rng_state % improving_count as u64 == 0 {
                    entering = Some((j, dir, score));
                }
            } else if entering.map(|(_, _, s)| score > s).unwrap_or(true) {
                entering = Some((j, dir, score));
            }
        }
        let Some((enter_col, direction, _)) = entering else {
            return Ok(LpStatus::Optimal);
        };

        // --- Ratio test. ---
        // The entering variable moves away from its bound by `t >= 0` in
        // `direction`; basic variables change by `-direction * t * tab[i][enter_col]`.
        let own_range = upper[enter_col] - lower[enter_col];
        let mut best_t = if own_range.is_finite() { own_range } else { f64::INFINITY };
        let mut leaving: Option<(usize, bool)> = None; // (row, leaves_at_upper)
        let mut best_pivot_mag = 0.0f64;
        for i in 0..m {
            let alpha = direction * tab[i * n + enter_col];
            let candidate = if alpha > PIVOT_TOL {
                // Basic variable decreases towards its lower bound.
                let lo = lower[basis[i]];
                lo.is_finite().then(|| ((x_basic[i] - lo) / alpha, (i, false)))
            } else if alpha < -PIVOT_TOL {
                // Basic variable increases towards its upper bound.
                let up = upper[basis[i]];
                up.is_finite().then(|| ((up - x_basic[i]) / (-alpha), (i, true)))
            } else {
                None
            };
            let Some((t, which)) = candidate else { continue };
            let t = t.max(0.0);
            // Strictly smaller step wins; among (near-)ties prefer the larger
            // pivot element for numerical stability and fewer degenerate
            // follow-up pivots (or the smallest leaving index under Bland).
            let is_tie = (t - best_t).abs() <= 1e-12;
            let better = if t < best_t - 1e-12 {
                true
            } else if is_tie {
                if use_bland {
                    leaving_is_better(&leaving, i, true, basis)
                } else {
                    alpha.abs() > best_pivot_mag
                }
            } else {
                false
            };
            if better {
                best_t = t;
                best_pivot_mag = alpha.abs();
                leaving = Some(which);
            }
        }

        if best_t.is_infinite() {
            return Ok(LpStatus::Unbounded);
        }
        if best_t <= 1e-12 {
            degenerate_streak += 1;
        } else {
            degenerate_streak = 0;
        }

        // --- Update basic values. ---
        for i in 0..m {
            x_basic[i] -= direction * best_t * tab[i * n + enter_col];
        }

        match leaving {
            None => {
                // Bound flip: the entering column moves to its opposite bound.
                status[enter_col] = match status[enter_col] {
                    ColStatus::AtLower => ColStatus::AtUpper,
                    ColStatus::AtUpper => ColStatus::AtLower,
                    other => other,
                };
            }
            Some((leave_row, leaves_at_upper)) => {
                let leave_col = basis[leave_row];
                // New value of the entering variable.
                let enter_from = nonbasic_value(status[enter_col], lower[enter_col], upper[enter_col]);
                let enter_value = enter_from + direction * best_t;

                // Pivot the tableau on (leave_row, enter_col).
                let pivot = tab[leave_row * n + enter_col];
                if pivot.abs() < PIVOT_TOL {
                    return Err(MilpError::NumericalTrouble(format!(
                        "pivot element too small ({pivot:.3e})"
                    )));
                }
                let inv = 1.0 / pivot;
                for j in 0..n {
                    tab[leave_row * n + j] *= inv;
                }
                for i in 0..m {
                    if i == leave_row {
                        continue;
                    }
                    let factor = tab[i * n + enter_col];
                    if factor != 0.0 {
                        for j in 0..n {
                            tab[i * n + j] -= factor * tab[leave_row * n + j];
                        }
                    }
                }
                let factor = reduced[enter_col];
                if factor != 0.0 {
                    for j in 0..n {
                        reduced[j] -= factor * tab[leave_row * n + j];
                    }
                }

                status[leave_col] = if leaves_at_upper { ColStatus::AtUpper } else { ColStatus::AtLower };
                status[enter_col] = ColStatus::Basic(leave_row);
                basis[leave_row] = enter_col;
                x_basic[leave_row] = enter_value;
            }
        }

        // Periodically refresh reduced costs to limit drift.
        if phase_iters % 256 == 0 {
            reduced = compute_reduced_costs(tab, basis, cost, n, m);
        }
    }
}

fn leaving_is_better(current: &Option<(usize, bool)>, candidate_row: usize, use_bland: bool, basis: &[usize]) -> bool {
    match current {
        None => true,
        Some((row, _)) => {
            if use_bland {
                // Bland: prefer the smallest leaving column index.
                basis[candidate_row] < basis[*row]
            } else {
                false
            }
        }
    }
}

fn compute_reduced_costs(tab: &[f64], basis: &[usize], cost: &[f64], n: usize, m: usize) -> Vec<f64> {
    // reduced = cost - cost_B^T * tab
    let mut reduced = cost.to_vec();
    for i in 0..m {
        let cb = cost[basis[i]];
        if cb != 0.0 {
            for j in 0..n {
                reduced[j] -= cb * tab[i * n + j];
            }
        }
    }
    // Basic columns have exactly zero reduced cost by construction.
    for i in 0..m {
        reduced[basis[i]] = 0.0;
    }
    reduced
}

/// Convenience: build and solve the LP relaxation of a model with given bounds.
pub fn solve_lp(model: &Model, lower: &[f64], upper: &[f64], max_iterations: usize) -> Result<LpSolution> {
    LpProblem::from_model(model, lower, upper)?.solve(max_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Model, Sense};

    fn bounds_of(model: &Model) -> (Vec<f64>, Vec<f64>) {
        (
            model.variables().iter().map(|v| v.lower).collect(),
            model.variables().iter().map(|v| v.upper).collect(),
        )
    }

    fn solve(model: &Model) -> LpSolution {
        let (lo, up) = bounds_of(model);
        solve_lp(model, &lo, &up, 100_000).unwrap()
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 2y st x + y <= 4, x + 3y <= 6, x,y >= 0  => x=4, y=0, obj=12
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint("c1", LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0), Sense::Le, 4.0);
        m.add_constraint("c2", LinExpr::term(x, 1.0) + LinExpr::term(y, 3.0), Sense::Le, 6.0);
        m.set_objective(LinExpr::term(x, -3.0) + LinExpr::term(y, -2.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - (-12.0)).abs() < 1e-6, "objective {}", s.objective);
        assert!((s.values[x.index()] - 4.0).abs() < 1e-6);
        assert!(s.values[y.index()].abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y st x + y = 10, x >= 3, y >= 2  => obj = 10
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 3.0, f64::INFINITY);
        let y = m.add_continuous("y", 2.0, f64::INFINITY);
        m.add_constraint("sum", LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0), Sense::Eq, 10.0);
        m.set_objective(LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-6);
        assert!((s.values[x.index()] + s.values[y.index()] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", LinExpr::term(x, 1.0), Sense::Ge, 2.0);
        m.set_objective(LinExpr::term(x, 1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.add_constraint("c", LinExpr::term(x, 1.0), Sense::Ge, 1.0);
        m.set_objective(LinExpr::term(x, -1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_respected_without_rows() {
        // min -x - y st x + y <= 10, x <= 3, y <= 4 (bounds, not rows) => obj -7
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, 4.0);
        m.add_constraint("c", LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0), Sense::Le, 10.0);
        m.set_objective(LinExpr::term(x, -1.0) + LinExpr::term(y, -1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - (-7.0)).abs() < 1e-6);
        assert!((s.values[x.index()] - 3.0).abs() < 1e-6);
        assert!((s.values[y.index()] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x st x >= -5 (bound), x + 3 >= 0 -> x >= -3 => obj -3
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", -5.0, 5.0);
        m.add_constraint("c", LinExpr::term(x, 1.0), Sense::Ge, -3.0);
        m.set_objective(LinExpr::term(x, 1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - (-3.0)).abs() < 1e-6);
    }

    #[test]
    fn objective_constant_carried_through() {
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, 2.0);
        m.set_objective(LinExpr::term(x, 1.0) + LinExpr::constant(100.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 100.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Several redundant constraints through the same vertex.
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        for i in 0..10 {
            m.add_constraint(
                format!("c{i}"),
                LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0 + i as f64 * 1e-9),
                Sense::Le,
                1.0,
            );
        }
        m.set_objective(LinExpr::term(x, -1.0) + LinExpr::term(y, -1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 1.0).abs() < 1e-5);
    }

    #[test]
    fn bigger_random_lp_feasible_and_optimal_bound() {
        // A transportation-style LP with known optimum.
        // min sum_{i,j} c_ij x_ij, row sums = supply, col sums = demand.
        let supplies = [20.0, 30.0, 25.0];
        let demands = [10.0, 25.0, 20.0, 20.0];
        let costs = [
            [8.0, 6.0, 10.0, 9.0],
            [9.0, 12.0, 13.0, 7.0],
            [14.0, 9.0, 16.0, 5.0],
        ];
        let mut m = Model::new("transport");
        let mut vars = vec![];
        for i in 0..3 {
            let mut row = vec![];
            for j in 0..4 {
                row.push(m.add_continuous(format!("x{i}{j}"), 0.0, f64::INFINITY));
            }
            vars.push(row);
        }
        for i in 0..3 {
            let mut e = LinExpr::zero();
            for j in 0..4 {
                e.add_term(vars[i][j], 1.0);
            }
            m.add_constraint(format!("s{i}"), e, Sense::Le, supplies[i]);
        }
        for j in 0..4 {
            let mut e = LinExpr::zero();
            for i in 0..3 {
                e.add_term(vars[i][j], 1.0);
            }
            m.add_constraint(format!("d{j}"), e, Sense::Eq, demands[j]);
        }
        let mut obj = LinExpr::zero();
        for i in 0..3 {
            for j in 0..4 {
                obj.add_term(vars[i][j], costs[i][j]);
            }
        }
        m.set_objective(obj);
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        // The optimum of this instance is 615 (verified by the MODI method:
        // the plan x01=20, x10=10, x12=20, x13=0, x21=5, x23=20 has all
        // non-negative reduced costs).
        for j in 0..4 {
            let col: f64 = (0..3).map(|i| s.values[vars[i][j].index()]).sum();
            assert!((col - demands[j]).abs() < 1e-5);
        }
        for i in 0..3 {
            let row: f64 = (0..4).map(|j| s.values[vars[i][j].index()]).sum();
            assert!(row <= supplies[i] + 1e-5);
        }
        assert!((s.objective - 615.0).abs() < 1e-5, "objective {}", s.objective);
    }
}
