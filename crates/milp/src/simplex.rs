//! Dense two-phase primal simplex with bounded variables.
//!
//! The LP relaxations produced by `qr-core` have many variables whose only
//! bound structure is `0 <= x <= u` (binary relaxations, rank variables,
//! error variables). Handling bounds natively — rather than as extra rows —
//! keeps the tableau at `m × (n + m)` and makes the solver fast enough for
//! the instance sizes in the benchmark.
//!
//! The implementation is a textbook bounded-variable primal simplex:
//!
//! * every constraint becomes an equality by adding a slack with the
//!   appropriate sign bounds (`<=` → slack in `[0, ∞)`, `>=` → `(-∞, 0]`,
//!   `==` → no slack),
//! * an artificial variable per row provides the initial basis; phase 1
//!   minimises the total artificial magnitude, phase 2 the true objective,
//! * entering variables are chosen by the Dantzig rule with a Bland's-rule
//!   fallback to guarantee termination, and the ratio test supports bound
//!   flips.

use crate::error::{MilpError, Result};
use crate::model::{Model, Sense};
use std::time::Instant;

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints admit no feasible point (within tolerances).
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The iteration limit was hit before convergence.
    IterationLimit,
}

/// Result of solving an LP relaxation.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Solve status.
    pub status: LpStatus,
    /// Objective value (meaningful for `Optimal`).
    pub objective: f64,
    /// Values of the model's structural variables, indexed by [`crate::model::VarId`] index.
    pub values: Vec<f64>,
    /// Number of simplex pivots performed (both phases).
    pub iterations: usize,
}

/// Feasibility tolerance used throughout the solver.
pub const FEAS_TOL: f64 = 1e-7;
/// Reduced-cost (optimality) tolerance.
const COST_TOL: f64 = 1e-9;
/// Pivot element magnitude below which a pivot is rejected.
const PIVOT_TOL: f64 = 1e-10;

#[derive(Debug, Clone, Copy, PartialEq)]
enum ColStatus {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Free variable (both bounds infinite), currently at value 0.
    Free,
}

/// How a row obtains its initial basic column ("crash" basis).
#[derive(Debug, Clone, Copy)]
enum BasisPlan {
    /// The row's slack absorbs the initial residual; no artificial needed.
    Slack { col: usize, residual: f64 },
    /// An artificial column carries the residual through phase 1.
    Artificial { col: usize, residual: f64 },
}

/// The LP relaxation of a [`Model`] with (possibly tightened) variable bounds.
pub struct LpProblem {
    /// Number of structural variables.
    n_struct: usize,
    /// Total number of columns (structural + slack + artificial).
    n_cols: usize,
    /// Number of rows.
    n_rows: usize,
    /// Dense row-major constraint matrix, `n_rows * n_cols`.
    matrix: Vec<f64>,
    /// Right-hand sides (for final feasibility verification).
    rhs: Vec<f64>,
    /// Constraint senses (for final feasibility verification).
    senses: Vec<Sense>,
    /// Lower bounds per column.
    lower: Vec<f64>,
    /// Upper bounds per column.
    upper: Vec<f64>,
    /// Phase-2 objective per column.
    objective: Vec<f64>,
    /// Constant term of the phase-2 objective.
    objective_constant: f64,
    /// Per-row crash-basis decision (computed at build time so artificial
    /// columns exist only for the rows that need one).
    basis_plan: Vec<BasisPlan>,
    /// Phase-1 cost per column (non-zero only on artificials).
    phase1_cost: Vec<f64>,
    /// Index of the first artificial column.
    first_artificial: usize,
}

impl LpProblem {
    /// Build the LP relaxation of `model`, overriding variable bounds with
    /// `lower` / `upper` (as tightened by presolve or branching).
    ///
    /// The initial ("crash") basis is decided here: the nonbasic structural
    /// variables start at a bound, and each row is covered either by its own
    /// slack (when the slack's bounds can absorb the resulting residual) or by
    /// an artificial column. Artificial columns are allocated **only** for the
    /// rows that need one, which keeps the dense tableau narrow — on the
    /// refinement MILPs most rows are inequalities whose slack suffices.
    pub fn from_model(model: &Model, lower: &[f64], upper: &[f64]) -> Result<Self> {
        model.validate()?;
        let n_struct = model.num_variables();
        let n_rows = model.num_constraints();

        // Initial values of the structural columns (each at a finite bound,
        // or 0 for free variables), shared by every row's residual.
        let initial_value: Vec<f64> = (0..n_struct)
            .map(|j| nonbasic_value(initial_status(lower[j], upper[j]), lower[j], upper[j]))
            .collect();

        // First pass: per-row slack assignment, residuals, and artificial
        // requirements.
        struct RowInfo {
            slack: Option<(usize, f64, f64)>, // (col, lower, upper)
            residual: f64,
            needs_artificial: bool,
        }
        let mut rows = Vec::with_capacity(n_rows);
        let mut slack_cursor = n_struct;
        for cons in model.constraints() {
            let mut residual = cons.rhs;
            for (v, c) in cons.expr.terms() {
                residual -= c * initial_value[v.index()];
            }
            let slack = match cons.sense {
                Sense::Le => {
                    let col = slack_cursor;
                    slack_cursor += 1;
                    Some((col, 0.0, f64::INFINITY))
                }
                Sense::Ge => {
                    let col = slack_cursor;
                    slack_cursor += 1;
                    Some((col, f64::NEG_INFINITY, 0.0))
                }
                Sense::Eq => None,
            };
            let slack_feasible = slack
                .map(|(_, lo, up)| residual >= lo - 1e-12 && residual <= up + 1e-12)
                .unwrap_or(false);
            rows.push(RowInfo {
                slack,
                residual,
                needs_artificial: !slack_feasible,
            });
        }
        let first_artificial = slack_cursor;
        let n_artificials = rows.iter().filter(|r| r.needs_artificial).count();
        let n_cols = first_artificial + n_artificials;

        let mut matrix = vec![0.0; n_rows * n_cols];
        let mut col_lower = vec![0.0; n_cols];
        let mut col_upper = vec![0.0; n_cols];
        col_lower[..n_struct].copy_from_slice(&lower[..n_struct]);
        col_upper[..n_struct].copy_from_slice(&upper[..n_struct]);

        let mut objective = vec![0.0; n_cols];
        for (v, c) in model.objective().terms() {
            objective[v.index()] = c;
        }
        let objective_constant = model.objective().constant_part();

        let mut phase1_cost = vec![0.0; n_cols];
        let mut basis_plan = Vec::with_capacity(n_rows);
        let mut art_cursor = first_artificial;
        for (i, (cons, info)) in model.constraints().iter().zip(&rows).enumerate() {
            for (v, c) in cons.expr.terms() {
                matrix[i * n_cols + v.index()] = c;
            }
            if let Some((col, lo, up)) = info.slack {
                matrix[i * n_cols + col] = 1.0;
                col_lower[col] = lo;
                col_upper[col] = up;
            }
            if info.needs_artificial {
                let art = art_cursor;
                art_cursor += 1;
                matrix[i * n_cols + art] = 1.0;
                if info.residual >= 0.0 {
                    col_lower[art] = 0.0;
                    col_upper[art] = f64::INFINITY;
                    phase1_cost[art] = 1.0;
                } else {
                    col_lower[art] = f64::NEG_INFINITY;
                    col_upper[art] = 0.0;
                    phase1_cost[art] = -1.0;
                }
                basis_plan.push(BasisPlan::Artificial {
                    col: art,
                    residual: info.residual,
                });
            } else {
                let (col, _, _) = info.slack.expect("row without artificial has a slack");
                basis_plan.push(BasisPlan::Slack {
                    col,
                    residual: info.residual,
                });
            }
        }

        Ok(LpProblem {
            n_struct,
            n_cols,
            n_rows,
            matrix,
            rhs: model.constraints().iter().map(|c| c.rhs).collect(),
            senses: model.constraints().iter().map(|c| c.sense).collect(),
            lower: col_lower,
            upper: col_upper,
            objective,
            objective_constant,
            basis_plan,
            phase1_cost,
            first_artificial,
        })
    }

    /// Solve the LP with the two-phase bounded simplex. `deadline`, when set,
    /// aborts the solve with [`LpStatus::IterationLimit`] once passed (checked
    /// periodically), so a single LP can never overshoot the caller's time
    /// budget by more than a few pivots.
    pub fn solve(&self, max_iterations: usize, deadline: Option<Instant>) -> Result<LpSolution> {
        let m = self.n_rows;
        let n = self.n_cols;

        // Working tableau: starts as a copy of the constraint matrix and is
        // transformed in place by pivots so that basic columns stay unit.
        let mut tab = self.matrix.clone();
        let lower = self.lower.clone();
        let upper = self.upper.clone();

        // Initial nonbasic statuses for structural + slack columns; basic
        // columns are overwritten from the basis plan below.
        let mut status = vec![ColStatus::AtLower; n];
        #[allow(clippy::needless_range_loop)]
        for j in 0..self.first_artificial {
            status[j] = initial_status(lower[j], upper[j]);
        }

        let mut basis = vec![0usize; m];
        let mut x_basic = vec![0.0; m];
        let phase1_cost = self.phase1_cost.clone();
        for (i, plan) in self.basis_plan.iter().enumerate() {
            let (col, residual) = match *plan {
                BasisPlan::Slack { col, residual } => (col, residual),
                BasisPlan::Artificial { col, residual } => (col, residual),
            };
            basis[i] = col;
            status[col] = ColStatus::Basic(i);
            x_basic[i] = residual;
        }

        let mut iterations = 0usize;

        // Phase 1: minimise total artificial magnitude.
        let status1 = simplex_phase(
            &mut tab,
            &mut x_basic,
            &mut basis,
            &mut status,
            &lower,
            &upper,
            &phase1_cost,
            n,
            m,
            max_iterations,
            deadline,
            &mut iterations,
        )?;
        if std::env::var_os("QR_MILP_DEBUG").is_some() {
            eprintln!("[qr-milp] phase1: {iterations} iters, status {status1:?}");
        }
        if status1 == LpStatus::IterationLimit {
            return Ok(LpSolution {
                status: LpStatus::IterationLimit,
                objective: f64::INFINITY,
                values: vec![0.0; self.n_struct],
                iterations,
            });
        }
        let phase1_obj: f64 = (0..n)
            .map(|j| phase1_cost[j] * column_value(j, &status, &x_basic, &lower, &upper))
            .sum();
        // Judge phase-1 success by re-checking the point against the pristine
        // rows, not only by the (drift-prone) artificial total: a corrupted
        // "feasible" claim must not reach phase 2, and a clean point whose
        // artificial total merely drifted must not be declared infeasible.
        let phase1_point: Vec<f64> = (0..self.n_struct)
            .map(|j| column_value(j, &status, &x_basic, &lower, &upper))
            .collect();
        if !self.verify(&phase1_point) {
            let status = if phase1_obj > 1e-6 {
                LpStatus::Infeasible
            } else {
                LpStatus::IterationLimit
            };
            return Ok(LpSolution {
                status,
                objective: f64::INFINITY,
                values: vec![0.0; self.n_struct],
                iterations,
            });
        }
        if phase1_obj > 1e-6 {
            // The structural point satisfies the rows, yet a basic artificial
            // still carries a material value: the tableau has drifted. Phase 2
            // would run against clamped-to-zero artificial bounds that its
            // basis violates, and its "optimal" objective could over-prune in
            // branch-and-bound. Report the solve as unreliable instead.
            return Ok(LpSolution {
                status: LpStatus::IterationLimit,
                objective: f64::INFINITY,
                values: vec![0.0; self.n_struct],
                iterations,
            });
        }

        // Fix artificials to zero for phase 2 so they can never re-enter with
        // a non-zero value.
        let mut lower2 = lower;
        let mut upper2 = upper;
        for art in self.first_artificial..n {
            lower2[art] = 0.0;
            upper2[art] = 0.0;
            // A basic artificial sitting at zero is harmless; a nonbasic one
            // must be recorded as being at a bound.
            if !matches!(status[art], ColStatus::Basic(_)) {
                status[art] = ColStatus::AtLower;
            }
        }

        // Phase 2: minimise the true objective.
        let status2 = simplex_phase(
            &mut tab,
            &mut x_basic,
            &mut basis,
            &mut status,
            &lower2,
            &upper2,
            &self.objective,
            n,
            m,
            max_iterations,
            deadline,
            &mut iterations,
        )?;

        let mut values = vec![0.0; self.n_struct];
        #[allow(clippy::needless_range_loop)]
        for j in 0..self.n_struct {
            values[j] = column_value(j, &status, &x_basic, &lower2, &upper2);
        }
        let objective = self.objective_constant
            + (0..self.n_struct)
                .map(|j| self.objective[j] * values[j])
                .sum::<f64>();

        let status = match status2 {
            // Long degenerate stalls can corrupt the in-place tableau beyond
            // the periodic reduced-cost refresh. An "optimal" point that does
            // not actually satisfy the model is downgraded to the unreliable
            // status so branch-and-bound never builds an incumbent from it.
            LpStatus::Optimal if !self.verify(&values) => LpStatus::IterationLimit,
            other => other,
        };
        Ok(LpSolution {
            status,
            objective,
            values,
            iterations,
        })
    }

    /// Check a candidate point against the original (un-pivoted) rows and
    /// bounds within a scaled tolerance. Guards against numerical drift in
    /// the pivoted tableau — the solution reported to callers must satisfy
    /// the *model*, not the tableau's opinion of it.
    fn verify(&self, values: &[f64]) -> bool {
        for (j, &v) in values.iter().enumerate().take(self.n_struct) {
            if v < self.lower[j] - 1e-6 || v > self.upper[j] + 1e-6 {
                return false;
            }
        }
        for i in 0..self.n_rows {
            let row = &self.matrix[i * self.n_cols..i * self.n_cols + self.n_struct];
            let activity: f64 = row.iter().zip(values).map(|(a, v)| a * v).sum();
            let tol = 1e-5 * (1.0 + self.rhs[i].abs());
            let ok = match self.senses[i] {
                Sense::Le => activity <= self.rhs[i] + tol,
                Sense::Ge => activity >= self.rhs[i] - tol,
                Sense::Eq => (activity - self.rhs[i]).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

fn initial_status(lower: f64, upper: f64) -> ColStatus {
    if lower.is_finite() {
        ColStatus::AtLower
    } else if upper.is_finite() {
        ColStatus::AtUpper
    } else {
        ColStatus::Free
    }
}

fn nonbasic_value(status: ColStatus, lower: f64, upper: f64) -> f64 {
    match status {
        ColStatus::AtLower => lower,
        ColStatus::AtUpper => upper,
        ColStatus::Free => 0.0,
        ColStatus::Basic(_) => unreachable!("nonbasic_value called on basic column"),
    }
}

fn column_value(
    col: usize,
    status: &[ColStatus],
    x_basic: &[f64],
    lower: &[f64],
    upper: &[f64],
) -> f64 {
    match status[col] {
        ColStatus::Basic(row) => x_basic[row],
        ColStatus::AtLower => lower[col],
        ColStatus::AtUpper => upper[col],
        ColStatus::Free => 0.0,
    }
}

/// Run one simplex phase to optimality (w.r.t. `cost`), mutating the tableau,
/// basis and statuses in place.
#[allow(clippy::too_many_arguments)]
fn simplex_phase(
    tab: &mut [f64],
    x_basic: &mut [f64],
    basis: &mut [usize],
    status: &mut [ColStatus],
    lower: &[f64],
    upper: &[f64],
    cost: &[f64],
    n: usize,
    m: usize,
    max_iterations: usize,
    deadline: Option<Instant>,
    iterations: &mut usize,
) -> Result<LpStatus> {
    // Reduced-cost row, kept consistent by pivoting.
    let mut reduced: Vec<f64> = compute_reduced_costs(tab, basis, cost, n, m);
    let bland_threshold = 20 * (n + m) + 2000;
    let mut phase_iters = 0usize;
    // Anti-cycling: after a run of degenerate (zero-step) pivots, entering
    // columns are picked pseudo-randomly among the improving candidates
    // instead of by the devex rule, which breaks the stalling patterns the
    // big-M refinement LPs otherwise exhibit.
    let mut degenerate_streak = 0usize;
    let mut rng_state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut pivot_row_buf: Vec<f64> = Vec::with_capacity(n);
    // Devex reference weights (Forrest–Goldfarb, simplified): pricing by
    // d_j^2 / w_j approximates steepest-edge at a fraction of its cost and
    // cuts the degenerate stalling the plain Dantzig rule exhibits on the
    // big-M refinement LPs by orders of magnitude.
    let mut devex_weight = vec![1.0f64; n];

    loop {
        if *iterations >= max_iterations {
            return Ok(LpStatus::IterationLimit);
        }
        // Checking the clock every pivot would be noticeable on small LPs;
        // every 64 pivots bounds the overshoot to well under a millisecond.
        if (*iterations).is_multiple_of(64) {
            if let Some(deadline) = deadline {
                if Instant::now() > deadline {
                    return Ok(LpStatus::IterationLimit);
                }
            }
        }
        *iterations += 1;
        phase_iters += 1;
        // Bland's rule guarantees escape from a degenerate vertex (or a
        // finite optimality proof), so engage it as soon as a genuine stall
        // is detected — not only after a global iteration budget. It
        // disengages automatically once a pivot makes real progress.
        let use_bland = phase_iters > bland_threshold || degenerate_streak > 100;
        let randomize = !use_bland && degenerate_streak > 8;

        // --- Pricing: pick an entering column and a direction. ---
        let mut entering: Option<(usize, f64, f64)> = None; // (col, direction, score)
        let mut improving_count = 0usize;
        for j in 0..n {
            let d = reduced[j];
            let (dir, improving) = match status[j] {
                ColStatus::Basic(_) => continue,
                ColStatus::AtLower => (1.0, d < -COST_TOL),
                ColStatus::AtUpper => (-1.0, d > COST_TOL),
                ColStatus::Free => {
                    if d < -COST_TOL {
                        (1.0, true)
                    } else if d > COST_TOL {
                        (-1.0, true)
                    } else {
                        (1.0, false)
                    }
                }
            };
            if !improving {
                continue;
            }
            improving_count += 1;
            let score = d * d / devex_weight[j];
            if use_bland {
                entering = Some((j, dir, score));
                break;
            }
            if randomize {
                // Reservoir-sample one improving column uniformly.
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                if entering.is_none() || rng_state.is_multiple_of(improving_count as u64) {
                    entering = Some((j, dir, score));
                }
            } else if entering.map(|(_, _, s)| score > s).unwrap_or(true) {
                entering = Some((j, dir, score));
            }
        }
        let Some((enter_col, direction, _)) = entering else {
            return Ok(LpStatus::Optimal);
        };

        // --- Ratio test. ---
        // The entering variable moves away from its bound by `t >= 0` in
        // `direction`; basic variables change by `-direction * t * tab[i][enter_col]`.
        let own_range = upper[enter_col] - lower[enter_col];
        let mut best_t = if own_range.is_finite() {
            own_range
        } else {
            f64::INFINITY
        };
        let mut leaving: Option<(usize, bool)> = None; // (row, leaves_at_upper)
        let mut best_pivot_mag = 0.0f64;
        for i in 0..m {
            let alpha = direction * tab[i * n + enter_col];
            let candidate = if alpha > PIVOT_TOL {
                // Basic variable decreases towards its lower bound.
                let lo = lower[basis[i]];
                lo.is_finite()
                    .then(|| ((x_basic[i] - lo) / alpha, (i, false)))
            } else if alpha < -PIVOT_TOL {
                // Basic variable increases towards its upper bound.
                let up = upper[basis[i]];
                up.is_finite()
                    .then(|| ((up - x_basic[i]) / (-alpha), (i, true)))
            } else {
                None
            };
            let Some((t, which)) = candidate else {
                continue;
            };
            let t = t.max(0.0);
            // Strictly smaller step wins; among (near-)ties prefer the larger
            // pivot element for numerical stability and fewer degenerate
            // follow-up pivots (or the smallest leaving index under Bland).
            let is_tie = (t - best_t).abs() <= 1e-12;
            let better = if t < best_t - 1e-12 {
                true
            } else if is_tie {
                if use_bland {
                    leaving_is_better(&leaving, i, true, basis)
                } else {
                    alpha.abs() > best_pivot_mag
                }
            } else {
                false
            };
            if better {
                best_t = t;
                best_pivot_mag = alpha.abs();
                leaving = Some(which);
            }
        }

        if best_t.is_infinite() {
            return Ok(LpStatus::Unbounded);
        }
        if best_t <= 1e-12 {
            degenerate_streak += 1;
            // A stall that survives hundreds of Bland pivots is not going to
            // resolve; long in-place pivot runs only corrupt the tableau.
            // Give up on this LP and let the caller fall back to box bounds.
            if degenerate_streak > 600 {
                return Ok(LpStatus::IterationLimit);
            }
        } else {
            degenerate_streak = 0;
        }

        // --- Update basic values. ---
        for i in 0..m {
            x_basic[i] -= direction * best_t * tab[i * n + enter_col];
        }

        match leaving {
            None => {
                // Bound flip: the entering column moves to its opposite bound.
                status[enter_col] = match status[enter_col] {
                    ColStatus::AtLower => ColStatus::AtUpper,
                    ColStatus::AtUpper => ColStatus::AtLower,
                    other => other,
                };
            }
            Some((leave_row, leaves_at_upper)) => {
                let leave_col = basis[leave_row];
                // New value of the entering variable.
                let enter_from =
                    nonbasic_value(status[enter_col], lower[enter_col], upper[enter_col]);
                let enter_value = enter_from + direction * best_t;

                // Pivot the tableau on (leave_row, enter_col).
                let pivot = tab[leave_row * n + enter_col];
                if pivot.abs() < PIVOT_TOL {
                    return Err(MilpError::NumericalTrouble(format!(
                        "pivot element too small ({pivot:.3e})"
                    )));
                }
                let inv = 1.0 / pivot;
                let pivot_row = &mut tab[leave_row * n..(leave_row + 1) * n];
                for a in pivot_row.iter_mut() {
                    *a *= inv;
                }
                // Snapshot the scaled pivot row so the elimination loops below
                // can run on disjoint slices (and autovectorize).
                pivot_row_buf.clear();
                pivot_row_buf.extend_from_slice(&tab[leave_row * n..(leave_row + 1) * n]);
                for (i, row) in tab.chunks_exact_mut(n).enumerate() {
                    if i == leave_row {
                        continue;
                    }
                    let factor = row[enter_col];
                    if factor != 0.0 {
                        for (a, &p) in row.iter_mut().zip(&pivot_row_buf) {
                            *a -= factor * p;
                        }
                    }
                }
                let factor = reduced[enter_col];
                if factor != 0.0 {
                    for (r, &p) in reduced.iter_mut().zip(&pivot_row_buf) {
                        *r -= factor * p;
                    }
                }

                // Devex weight update over the (scaled) pivot row; the
                // leaving column inherits the entering column's reference
                // weight through the pivot element.
                let gamma = devex_weight[enter_col].max(1.0);
                for (w, &p) in devex_weight.iter_mut().zip(&pivot_row_buf) {
                    let candidate = p * p * gamma;
                    if candidate > *w {
                        *w = candidate;
                    }
                }
                devex_weight[leave_col] = (gamma / (pivot * pivot)).max(1.0);
                devex_weight[enter_col] = 1.0;
                if devex_weight.iter().any(|&w| w > 1e8) {
                    // Reference framework reset keeps the weights meaningful.
                    devex_weight.iter_mut().for_each(|w| *w = 1.0);
                }

                status[leave_col] = if leaves_at_upper {
                    ColStatus::AtUpper
                } else {
                    ColStatus::AtLower
                };
                status[enter_col] = ColStatus::Basic(leave_row);
                basis[leave_row] = enter_col;
                x_basic[leave_row] = enter_value;
            }
        }

        // Periodically refresh reduced costs to limit drift.
        if phase_iters.is_multiple_of(256) {
            reduced = compute_reduced_costs(tab, basis, cost, n, m);
            if phase_iters.is_multiple_of(2048) && std::env::var_os("QR_MILP_DEBUG").is_some() {
                let obj: f64 = (0..n)
                    .map(|j| cost[j] * column_value(j, status, x_basic, lower, upper))
                    .sum();
                eprintln!(
                    "[qr-milp]   iter {phase_iters}: obj {obj:.6}, degenerate streak {degenerate_streak}"
                );
            }
        }
    }
}

fn leaving_is_better(
    current: &Option<(usize, bool)>,
    candidate_row: usize,
    use_bland: bool,
    basis: &[usize],
) -> bool {
    match current {
        None => true,
        Some((row, _)) => {
            if use_bland {
                // Bland: prefer the smallest leaving column index.
                basis[candidate_row] < basis[*row]
            } else {
                false
            }
        }
    }
}

fn compute_reduced_costs(
    tab: &[f64],
    basis: &[usize],
    cost: &[f64],
    n: usize,
    m: usize,
) -> Vec<f64> {
    // reduced = cost - cost_B^T * tab
    let mut reduced = cost.to_vec();
    for i in 0..m {
        let cb = cost[basis[i]];
        if cb != 0.0 {
            for j in 0..n {
                reduced[j] -= cb * tab[i * n + j];
            }
        }
    }
    // Basic columns have exactly zero reduced cost by construction.
    for i in 0..m {
        reduced[basis[i]] = 0.0;
    }
    reduced
}

/// Convenience: build and solve the LP relaxation of a model with given
/// bounds, optionally bounded by a wall-clock deadline.
pub fn solve_lp(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    max_iterations: usize,
    deadline: Option<Instant>,
) -> Result<LpSolution> {
    LpProblem::from_model(model, lower, upper)?.solve(max_iterations, deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Model, Sense};

    fn bounds_of(model: &Model) -> (Vec<f64>, Vec<f64>) {
        (
            model.variables().iter().map(|v| v.lower).collect(),
            model.variables().iter().map(|v| v.upper).collect(),
        )
    }

    fn solve(model: &Model) -> LpSolution {
        let (lo, up) = bounds_of(model);
        solve_lp(model, &lo, &up, 100_000, None).unwrap()
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 2y st x + y <= 4, x + 3y <= 6, x,y >= 0  => x=4, y=0, obj=12
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint(
            "c1",
            LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0),
            Sense::Le,
            4.0,
        );
        m.add_constraint(
            "c2",
            LinExpr::term(x, 1.0) + LinExpr::term(y, 3.0),
            Sense::Le,
            6.0,
        );
        m.set_objective(LinExpr::term(x, -3.0) + LinExpr::term(y, -2.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - (-12.0)).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!((s.values[x.index()] - 4.0).abs() < 1e-6);
        assert!(s.values[y.index()].abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y st x + y = 10, x >= 3, y >= 2  => obj = 10
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 3.0, f64::INFINITY);
        let y = m.add_continuous("y", 2.0, f64::INFINITY);
        m.add_constraint(
            "sum",
            LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0),
            Sense::Eq,
            10.0,
        );
        m.set_objective(LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-6);
        assert!((s.values[x.index()] + s.values[y.index()] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", LinExpr::term(x, 1.0), Sense::Ge, 2.0);
        m.set_objective(LinExpr::term(x, 1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.add_constraint("c", LinExpr::term(x, 1.0), Sense::Ge, 1.0);
        m.set_objective(LinExpr::term(x, -1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_respected_without_rows() {
        // min -x - y st x + y <= 10, x <= 3, y <= 4 (bounds, not rows) => obj -7
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, 4.0);
        m.add_constraint(
            "c",
            LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0),
            Sense::Le,
            10.0,
        );
        m.set_objective(LinExpr::term(x, -1.0) + LinExpr::term(y, -1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - (-7.0)).abs() < 1e-6);
        assert!((s.values[x.index()] - 3.0).abs() < 1e-6);
        assert!((s.values[y.index()] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x st x >= -5 (bound), x + 3 >= 0 -> x >= -3 => obj -3
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", -5.0, 5.0);
        m.add_constraint("c", LinExpr::term(x, 1.0), Sense::Ge, -3.0);
        m.set_objective(LinExpr::term(x, 1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - (-3.0)).abs() < 1e-6);
    }

    #[test]
    fn objective_constant_carried_through() {
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, 2.0);
        m.set_objective(LinExpr::term(x, 1.0) + LinExpr::constant(100.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 100.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Several redundant constraints through the same vertex.
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        for i in 0..10 {
            m.add_constraint(
                format!("c{i}"),
                LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0 + i as f64 * 1e-9),
                Sense::Le,
                1.0,
            );
        }
        m.set_objective(LinExpr::term(x, -1.0) + LinExpr::term(y, -1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 1.0).abs() < 1e-5);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn bigger_random_lp_feasible_and_optimal_bound() {
        // A transportation-style LP with known optimum.
        // min sum_{i,j} c_ij x_ij, row sums = supply, col sums = demand.
        let supplies = [20.0, 30.0, 25.0];
        let demands = [10.0, 25.0, 20.0, 20.0];
        let costs = [
            [8.0, 6.0, 10.0, 9.0],
            [9.0, 12.0, 13.0, 7.0],
            [14.0, 9.0, 16.0, 5.0],
        ];
        let mut m = Model::new("transport");
        let mut vars = vec![];
        for i in 0..3 {
            let mut row = vec![];
            for j in 0..4 {
                row.push(m.add_continuous(format!("x{i}{j}"), 0.0, f64::INFINITY));
            }
            vars.push(row);
        }
        for i in 0..3 {
            let mut e = LinExpr::zero();
            for j in 0..4 {
                e.add_term(vars[i][j], 1.0);
            }
            m.add_constraint(format!("s{i}"), e, Sense::Le, supplies[i]);
        }
        for j in 0..4 {
            let mut e = LinExpr::zero();
            for i in 0..3 {
                e.add_term(vars[i][j], 1.0);
            }
            m.add_constraint(format!("d{j}"), e, Sense::Eq, demands[j]);
        }
        let mut obj = LinExpr::zero();
        for i in 0..3 {
            for j in 0..4 {
                obj.add_term(vars[i][j], costs[i][j]);
            }
        }
        m.set_objective(obj);
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        // The optimum of this instance is 615 (verified by the MODI method:
        // the plan x01=20, x10=10, x12=20, x13=0, x21=5, x23=20 has all
        // non-negative reduced costs).
        for j in 0..4 {
            let col: f64 = (0..3).map(|i| s.values[vars[i][j].index()]).sum();
            assert!((col - demands[j]).abs() < 1e-5);
        }
        for i in 0..3 {
            let row: f64 = (0..4).map(|j| s.values[vars[i][j].index()]).sum();
            assert!(row <= supplies[i] + 1e-5);
        }
        assert!(
            (s.objective - 615.0).abs() < 1e-5,
            "objective {}",
            s.objective
        );
    }
}
