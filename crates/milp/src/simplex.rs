//! Dense bounded-variable simplex with a reusable workspace and warm starts.
//!
//! The LP relaxations produced by `qr-core` have many variables whose only
//! bound structure is `0 <= x <= u` (binary relaxations, rank variables,
//! error variables). Handling bounds natively — rather than as extra rows —
//! keeps the tableau at `m × (n + m)` and makes the solver fast enough for
//! the instance sizes in the benchmark.
//!
//! The solver is organised around [`LpWorkspace`], which is built **once per
//! model** and then answers any number of solves with different variable
//! bounds (exactly the branch-and-bound access pattern — every node changes
//! bounds, never the matrix):
//!
//! * the constraint matrix, slack layout and objective are bound-independent
//!   and shared by every solve; per-solve scratch (tableau, costs, reduced
//!   costs, devex weights) lives in reusable buffers, so a node solve
//!   performs no per-call allocation beyond the first,
//! * a **cold** solve runs the textbook two-phase primal simplex: an
//!   artificial column per row whose slack cannot absorb the initial
//!   residual, phase 1 minimising total artificial magnitude, phase 2 the
//!   true objective. Entering variables are chosen by devex pricing with
//!   anti-cycling fallbacks (randomised pricing, cost perturbation, Bland's
//!   rule),
//! * a **warm** solve ([`LpWorkspace::solve`] with a [`Basis`]) re-pivots the
//!   in-memory tableau to a previously snapshotted basis and runs the
//!   bound-flip dual simplex ([`crate::dual`]) to repair the (few) bound
//!   violations a branch introduces, skipping phase 1 entirely. A short
//!   primal clean-up phase then certifies optimality. Warm solves that go
//!   numerically wrong (singular basis, dual stall, failed verification)
//!   fall back to a cold solve transparently.
//!
//! Degenerate stalls — endemic to the big-M refinement LPs — are broken by
//! *cost perturbation*: after a run of zero-step pivots the working costs are
//! shifted by tiny status-aligned amounts, the phase runs to optimality on
//! the perturbed costs, and the perturbation is then removed and optimality
//! re-established on the true costs. The hard stall bailout that used to
//! abort such LPs after 600 degenerate pivots survives only as a last-resort
//! safety valve at a much higher threshold.

use crate::basis::{Basis, VarStatus};
use crate::dual::{dual_simplex, DualStatus};
use crate::error::{MilpError, Result};
use crate::model::{Model, Sense};
use std::time::Instant;

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints admit no feasible point (within tolerances).
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The iteration limit was hit before convergence.
    IterationLimit,
}

/// Result of solving an LP relaxation.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Solve status.
    pub status: LpStatus,
    /// Objective value (meaningful for `Optimal`).
    pub objective: f64,
    /// Values of the model's structural variables, indexed by [`crate::model::VarId`] index.
    pub values: Vec<f64>,
    /// Number of simplex pivots performed (all phases, dual included).
    pub iterations: usize,
    /// Whether the solve started from a warm basis (dual simplex path) rather
    /// than a cold two-phase run.
    pub warm_started: bool,
}

impl LpSolution {
    fn without_point(status: LpStatus, n_struct: usize, iterations: usize) -> Self {
        LpSolution {
            status,
            objective: f64::INFINITY,
            values: vec![0.0; n_struct],
            iterations,
            warm_started: false,
        }
    }
}

/// Feasibility tolerance used throughout the solver.
pub const FEAS_TOL: f64 = 1e-7;
/// Reduced-cost (optimality) tolerance.
const COST_TOL: f64 = 1e-9;
/// Pivot element magnitude below which a pivot is rejected.
pub(crate) const PIVOT_TOL: f64 = 1e-10;
/// Pivot magnitude below which a basis-loading pivot counts as singular.
const REFACTOR_TOL: f64 = 1e-8;
/// Warm solves allowed to chain on one in-place tableau before the next warm
/// solve refactorizes from the pristine matrix (bounds rounding drift).
const REFACTOR_INTERVAL: usize = 64;

/// How a row obtains its initial basic column in a cold solve.
#[derive(Debug, Clone, Copy)]
enum CrashPlan {
    /// The row's slack absorbs the initial residual; no artificial needed.
    Slack { col: usize, residual: f64 },
    /// An artificial column carries the residual through phase 1.
    Artificial { col: usize, residual: f64 },
}

/// Per-phase scratch buffers, reused across solves (no per-call allocation
/// once warmed up).
#[derive(Debug, Default)]
struct Scratch {
    reduced: Vec<f64>,
    devex: Vec<f64>,
    work_cost: Vec<f64>,
    pivot_row: Vec<f64>,
}

/// A reusable LP solving context for one [`Model`]: the bound-independent
/// problem data (matrix, slack layout, objective) plus all per-solve scratch.
///
/// Build it once, then call [`solve`](Self::solve) per bound set. After an
/// optimal solve, [`snapshot_basis`](Self::snapshot_basis) captures the basis
/// for warm-starting related solves (branch-and-bound children).
pub struct LpWorkspace {
    // Bound-independent problem data.
    n_struct: usize,
    n_rows: usize,
    /// Structural + slack column count (artificials, when present, follow).
    core_cols: usize,
    /// `n_rows x core_cols` row-major matrix, slack unit entries included.
    matrix: Vec<f64>,
    rhs: Vec<f64>,
    senses: Vec<Sense>,
    /// Lower/upper bounds of the slack columns (index `core_lower[j]` is only
    /// meaningful for `j >= n_struct`; structural entries are overwritten per
    /// solve).
    core_lower: Vec<f64>,
    core_upper: Vec<f64>,
    objective: Vec<f64>,
    objective_constant: f64,

    // Per-solve scratch, reused.
    tab: Vec<f64>,
    /// Column stride of `tab` (>= `core_cols`; larger after a cold solve that
    /// needed artificial columns).
    cur_cols: usize,
    /// `B^-1 rhs`, maintained through every pivot alongside the tableau.
    rhs_work: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    status: Vec<VarStatus>,
    basis: Vec<usize>,
    x_basic: Vec<f64>,
    cost: Vec<f64>,
    values_buf: Vec<f64>,
    scratch: Scratch,
    /// Whether `tab`/`basis`/`status` describe a consistent basis from the
    /// previous solve (enables cheap warm transitions).
    tableau_valid: bool,
    /// Consecutive warm solves that reused the in-place tableau since the
    /// last refactorization (see [`REFACTOR_INTERVAL`]).
    warm_reuse_streak: usize,
}

impl LpWorkspace {
    /// Build a workspace for `model`. The constraint matrix, slack layout and
    /// objective are extracted once here; variable bounds are supplied per
    /// [`solve`](Self::solve).
    pub fn new(model: &Model) -> Result<Self> {
        model.validate()?;
        let n_struct = model.num_variables();
        let n_rows = model.num_constraints();

        let mut slack_count = 0usize;
        for cons in model.constraints() {
            if !matches!(cons.sense, Sense::Eq) {
                slack_count += 1;
            }
        }
        let core_cols = n_struct + slack_count;

        let mut matrix = vec![0.0; n_rows * core_cols];
        let mut core_lower = vec![0.0; core_cols];
        let mut core_upper = vec![0.0; core_cols];
        let mut slack_cursor = n_struct;
        for (i, cons) in model.constraints().iter().enumerate() {
            for (v, c) in cons.expr.terms() {
                matrix[i * core_cols + v.index()] = c;
            }
            match cons.sense {
                Sense::Le => {
                    matrix[i * core_cols + slack_cursor] = 1.0;
                    core_lower[slack_cursor] = 0.0;
                    core_upper[slack_cursor] = f64::INFINITY;
                    slack_cursor += 1;
                }
                Sense::Ge => {
                    matrix[i * core_cols + slack_cursor] = 1.0;
                    core_lower[slack_cursor] = f64::NEG_INFINITY;
                    core_upper[slack_cursor] = 0.0;
                    slack_cursor += 1;
                }
                Sense::Eq => {}
            }
        }

        let mut objective = vec![0.0; core_cols];
        for (v, c) in model.objective().terms() {
            objective[v.index()] = c;
        }

        Ok(LpWorkspace {
            n_struct,
            n_rows,
            core_cols,
            matrix,
            rhs: model.constraints().iter().map(|c| c.rhs).collect(),
            senses: model.constraints().iter().map(|c| c.sense).collect(),
            core_lower,
            core_upper,
            objective,
            objective_constant: model.objective().constant_part(),
            tab: Vec::new(),
            cur_cols: 0,
            rhs_work: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            status: Vec::new(),
            basis: Vec::new(),
            x_basic: Vec::new(),
            cost: Vec::new(),
            values_buf: Vec::new(),
            scratch: Scratch::default(),
            tableau_valid: false,
            warm_reuse_streak: 0,
        })
    }

    /// Solve the LP with the given variable bounds. When `warm` is provided,
    /// the solver first attempts a warm start from that basis (dual simplex
    /// repair of the branched bounds); any warm-path failure falls back to a
    /// cold two-phase solve transparently.
    ///
    /// `deadline`, when set, aborts the solve with [`LpStatus::IterationLimit`]
    /// once passed (checked periodically), so a single LP can never overshoot
    /// the caller's time budget by more than a few pivots.
    pub fn solve(
        &mut self,
        lower: &[f64],
        upper: &[f64],
        warm: Option<&Basis>,
        max_iterations: usize,
        deadline: Option<Instant>,
    ) -> Result<LpSolution> {
        // Pivots burned in abandoned warm attempts still count towards the
        // solve's iteration total — the statistics must reflect all work done.
        let mut wasted = 0usize;
        if let Some(basis) = warm {
            if let Some(mut solution) =
                self.try_warm(lower, upper, basis, max_iterations, deadline, &mut wasted)?
            {
                solution.iterations += wasted;
                return Ok(solution);
            }
        }
        let mut solution = self.solve_cold(
            lower,
            upper,
            max_iterations.saturating_sub(wasted),
            deadline,
        )?;
        solution.iterations += wasted;
        Ok(solution)
    }

    /// Snapshot the basis of the last verified-optimal solve, for
    /// warm-starting a related solve. Returns `None` when the workspace holds
    /// no reusable basis (the last solve did not end optimal, or an
    /// artificial column is stuck basic at a non-zero value).
    pub fn snapshot_basis(&mut self) -> Option<Basis> {
        if !self.tableau_valid {
            return None;
        }
        let m = self.n_rows;
        let n = self.cur_cols;
        // Pivot out any artificial column that is still basic (degenerate
        // equality rows leave them basic at value zero). The replacement is
        // chosen by pivot magnitude only; any dual infeasibility this
        // introduces is repaired by the warm path's clean-up phase.
        for r in 0..m {
            if self.basis[r] < self.core_cols {
                continue;
            }
            if self.x_basic[r].abs() > FEAS_TOL {
                return None;
            }
            let mut best: Option<(usize, f64)> = None;
            for j in 0..self.core_cols {
                if self.status[j].is_basic() {
                    continue;
                }
                let a = self.tab[r * n + j].abs();
                if a > REFACTOR_TOL && best.map(|(_, b)| a > b).unwrap_or(true) {
                    best = Some((j, a));
                }
            }
            let (enter, _) = best?;
            pivot_inplace(
                &mut self.tab,
                &mut self.rhs_work,
                n,
                m,
                r,
                enter,
                None,
                &mut self.scratch.pivot_row,
            );
            let art = self.basis[r];
            let enter_value =
                nonbasic_value(self.status[enter], self.lower[enter], self.upper[enter]);
            self.status[art] = VarStatus::AtLower;
            self.status[enter] = VarStatus::Basic(r);
            self.basis[r] = enter;
            self.x_basic[r] = enter_value;
        }
        Some(Basis::new(self.status[..self.core_cols].to_vec()))
    }

    /// Attempt a warm-started solve; `Ok(None)` means "fall back to cold".
    /// Pivots spent on abandoned attempts are accumulated into `wasted`.
    ///
    /// A first attempt reuses the previous solve's in-place tableau when
    /// available (a first-child warm start is then nearly free). Any anomaly
    /// on that reused tableau — singular transition, dual stall, an
    /// infeasibility certificate, a failed verification — earns one retry
    /// from a *fresh refactorization* of the pristine matrix before the cold
    /// fallback, so accumulated pivot drift cannot masquerade as a stale
    /// basis (and an infeasibility verdict is only ever trusted from a
    /// freshly refactorized tableau).
    fn try_warm(
        &mut self,
        lower: &[f64],
        upper: &[f64],
        basis: &Basis,
        max_iterations: usize,
        deadline: Option<Instant>,
        wasted: &mut usize,
    ) -> Result<Option<LpSolution>> {
        if basis.num_columns() != self.core_cols || basis.num_basic() != self.n_rows {
            return Ok(None);
        }
        // Reusing the previous solve's tableau makes a first-child warm start
        // nearly free, but every in-place pivot accumulates rounding error;
        // refactorize from the pristine matrix periodically so drift cannot
        // chain unboundedly across a long run of warm solves.
        let mut reuse = self.tableau_valid && self.warm_reuse_streak < REFACTOR_INTERVAL;
        loop {
            // One iteration budget spans every attempt (and, via `wasted`,
            // the cold fallback): a node LP cannot overshoot the caller's
            // `max_iterations` severalfold by restarting its counter.
            let budget = max_iterations.saturating_sub(*wasted);
            if budget == 0 {
                return Ok(None);
            }
            match self.warm_attempt(lower, upper, basis, budget, deadline, reuse, wasted)? {
                Some(solution) => return Ok(Some(solution)),
                None if reuse => reuse = false,
                None => return Ok(None),
            }
        }
    }

    /// One warm attempt at a fixed `reuse` choice; `Ok(None)` means the
    /// attempt was abandoned (retry refactorized or fall back cold).
    #[allow(clippy::too_many_arguments)]
    fn warm_attempt(
        &mut self,
        lower: &[f64],
        upper: &[f64],
        basis: &Basis,
        max_iterations: usize,
        deadline: Option<Instant>,
        reuse: bool,
        wasted: &mut usize,
    ) -> Result<Option<LpSolution>> {
        self.tableau_valid = false;
        if !self.load_basis(basis, reuse) {
            return Ok(None);
        }
        self.warm_reuse_streak = if reuse { self.warm_reuse_streak + 1 } else { 0 };
        let m = self.n_rows;
        let n = self.cur_cols;

        // Working bounds: caller's structural bounds, fixed slack bounds,
        // artificial leftovers pinned to zero.
        self.lower[..self.n_struct].copy_from_slice(&lower[..self.n_struct]);
        self.upper[..self.n_struct].copy_from_slice(&upper[..self.n_struct]);
        self.lower[self.n_struct..self.core_cols]
            .copy_from_slice(&self.core_lower[self.n_struct..]);
        self.upper[self.n_struct..self.core_cols]
            .copy_from_slice(&self.core_upper[self.n_struct..]);
        for j in self.core_cols..n {
            self.lower[j] = 0.0;
            self.upper[j] = 0.0;
            if !self.status[j].is_basic() {
                self.status[j] = VarStatus::AtLower;
            }
        }

        // Reconcile nonbasic rest points with the (tightened) bounds.
        for j in 0..n {
            if !self.status[j].is_basic() {
                self.status[j] = reconcile_status(self.status[j], self.lower[j], self.upper[j]);
            }
        }

        // x_B = B^-1 b - (B^-1 N) x_N, using the maintained B^-1 b column.
        self.values_buf.resize(n, 0.0);
        for j in 0..n {
            self.values_buf[j] = match self.status[j] {
                VarStatus::Basic(_) => 0.0,
                s => nonbasic_value(s, self.lower[j], self.upper[j]),
            };
        }
        self.x_basic.resize(m, 0.0);
        for i in 0..m {
            let row = &self.tab[i * n..(i + 1) * n];
            let dot: f64 = row.iter().zip(&self.values_buf).map(|(a, v)| a * v).sum();
            self.x_basic[i] = self.rhs_work[i] - dot;
        }

        // True objective over the current column set.
        self.cost.resize(n, 0.0);
        self.cost[..self.core_cols].copy_from_slice(&self.objective);
        for c in self.cost[self.core_cols..].iter_mut() {
            *c = 0.0;
        }

        compute_reduced_costs(
            &self.tab,
            &self.basis,
            &self.cost,
            n,
            m,
            &mut self.scratch.reduced,
        );

        let mut iterations = 0usize;
        // The dual repair of a single branched bound needs few pivots; a stall
        // beyond this cap means the warm basis is a bad start — fall back.
        let dual_cap = max_iterations.min(4 * (n + m) + 1000);
        let dual_status = dual_simplex(
            &mut self.tab,
            &mut self.rhs_work,
            &mut self.x_basic,
            &mut self.basis,
            &mut self.status,
            &self.lower,
            &self.upper,
            &mut self.scratch.reduced,
            self.core_cols,
            n,
            m,
            dual_cap,
            deadline,
            &mut iterations,
            &mut self.scratch.pivot_row,
        )?;
        let debug = std::env::var_os("QR_MILP_DEBUG").is_some();
        match dual_status {
            DualStatus::Infeasible => {
                // The certificate is a tableau row, which pivot drift could
                // corrupt into a *false* infeasibility — and branch-and-bound
                // would prune a feasible subtree on it. Unlike an Optimal
                // claim there is no pristine-row check for "no feasible point
                // exists", so only trust a certificate read off a tableau
                // refactorized from the pristine matrix *this* solve; a
                // reused tableau earns a refactorized retry instead.
                if reuse {
                    if debug {
                        eprintln!(
                            "[qr-milp] warm: infeasible after {iterations} dual pivots, re-checking refactorized"
                        );
                    }
                    *wasted += iterations;
                    return Ok(None);
                }
                if debug {
                    eprintln!("[qr-milp] warm: infeasible after {iterations} dual pivots");
                }
                self.tableau_valid = true;
                let mut sol =
                    LpSolution::without_point(LpStatus::Infeasible, self.n_struct, iterations);
                sol.warm_started = true;
                return Ok(Some(sol));
            }
            DualStatus::IterationLimit => {
                if debug {
                    eprintln!("[qr-milp] warm: dual stalled after {iterations} pivots, going cold");
                }
                *wasted += iterations;
                return Ok(None);
            }
            DualStatus::Feasible => {}
        }

        // Primal clean-up: certify optimality on the true costs (the dual run
        // maintains dual feasibility only up to the Harris tolerance).
        let status2 = simplex_phase(
            &mut self.tab,
            &mut self.rhs_work,
            &mut self.x_basic,
            &mut self.basis,
            &mut self.status,
            &self.lower,
            &self.upper,
            &self.cost,
            n,
            m,
            max_iterations,
            deadline,
            &mut iterations,
            &mut self.scratch,
        )?;
        if debug {
            eprintln!("[qr-milp] warm: {iterations} pivots, cleanup status {status2:?}");
        }
        match status2 {
            LpStatus::Optimal => {}
            // A child LP of a bounded-optimal parent cannot truly be
            // unbounded, so this is drift; a stalled clean-up likewise means
            // the warm trajectory went bad. Either way, abandon the attempt
            // (refactorized retry, then the cold path with its stronger
            // anti-cycling machinery) rather than fabricating a point.
            _ => {
                *wasted += iterations;
                return Ok(None);
            }
        }

        let solution = self.package_optimal(iterations);
        match solution {
            Some(mut sol) => {
                self.tableau_valid = true;
                sol.warm_started = true;
                Ok(Some(sol))
            }
            // A warm "optimal" point that fails verification is numerical
            // drift; abandon the attempt rather than surfacing an unreliable
            // solve.
            None => {
                *wasted += iterations;
                Ok(None)
            }
        }
    }

    /// Re-pivot the tableau so the basic set matches `target`. With
    /// `reuse == true` the transition starts from the previous solve's
    /// factorized tableau (cost: one pivot per differing column — zero for a
    /// first child); otherwise it refactorizes from the raw matrix. Returns
    /// `false` on a singular/stale basis.
    fn load_basis(&mut self, target: &Basis, reuse: bool) -> bool {
        let m = self.n_rows;
        if !reuse {
            self.cur_cols = self.core_cols;
            self.tab.clear();
            self.tab.extend_from_slice(&self.matrix);
            self.rhs_work.clear();
            self.rhs_work.extend_from_slice(&self.rhs);
            self.basis.clear();
            self.basis.resize(m, usize::MAX);
        }
        let n = self.cur_cols;
        let core_cols = self.core_cols;
        self.lower.resize(n, 0.0);
        self.upper.resize(n, 0.0);
        self.status.resize(n, VarStatus::AtLower);

        let target_statuses = target.statuses();
        let in_target = |col: usize| col < core_cols && target_statuses[col].is_basic();

        // Rows whose current basic column is not wanted are free to receive a
        // target column; every target column not currently basic needs one.
        // `basis` is the authoritative row map (statuses can be stale here);
        // mark membership in the reusable values buffer to avoid a per-solve
        // set allocation.
        let mut free_rows: Vec<usize> = Vec::new();
        self.values_buf.clear();
        self.values_buf.resize(n, 0.0);
        for r in 0..m {
            let col = self.basis[r];
            if col == usize::MAX || !in_target(col) {
                free_rows.push(r);
            } else {
                self.values_buf[col] = 1.0;
            }
        }
        let pending: Vec<usize> = (0..core_cols)
            .filter(|&j| target_statuses[j].is_basic() && self.values_buf[j] == 0.0)
            .collect();

        for q in pending {
            // Partial pivoting: place q in the free row with the largest
            // pivot magnitude.
            let mut best: Option<(usize, usize, f64)> = None; // (slot, row, |pivot|)
            for (slot, &r) in free_rows.iter().enumerate() {
                let a = self.tab[r * n + q].abs();
                if a > REFACTOR_TOL && best.map(|(_, _, b)| a > b).unwrap_or(true) {
                    best = Some((slot, r, a));
                }
            }
            let Some((slot, r, _)) = best else {
                return false; // singular or stale basis
            };
            pivot_inplace(
                &mut self.tab,
                &mut self.rhs_work,
                n,
                m,
                r,
                q,
                None,
                &mut self.scratch.pivot_row,
            );
            self.basis[r] = q;
            free_rows.swap_remove(slot);
        }

        // Final statuses: basic from the (re-derived) row map, nonbasic from
        // the snapshot's recorded bound side.
        for (j, status) in self.status.iter_mut().enumerate() {
            *status = if j < core_cols {
                match target_statuses[j] {
                    VarStatus::Basic(_) => VarStatus::Basic(usize::MAX), // fixed below
                    s => s,
                }
            } else {
                VarStatus::AtLower
            };
        }
        for r in 0..m {
            let col = self.basis[r];
            if col == usize::MAX || !in_target(col) {
                return false; // a row was left without a target column
            }
            self.status[col] = VarStatus::Basic(r);
        }
        true
    }

    /// Cold two-phase solve from a crash basis.
    fn solve_cold(
        &mut self,
        lower: &[f64],
        upper: &[f64],
        max_iterations: usize,
        deadline: Option<Instant>,
    ) -> Result<LpSolution> {
        self.tableau_valid = false;
        self.warm_reuse_streak = 0;
        let m = self.n_rows;

        // Working bounds over the core columns.
        self.lower.clear();
        self.lower.extend_from_slice(&lower[..self.n_struct]);
        self.lower
            .extend_from_slice(&self.core_lower[self.n_struct..]);
        self.upper.clear();
        self.upper.extend_from_slice(&upper[..self.n_struct]);
        self.upper
            .extend_from_slice(&self.core_upper[self.n_struct..]);

        // Initial nonbasic statuses and values for the core columns.
        self.status.clear();
        for j in 0..self.core_cols {
            self.status
                .push(initial_status(self.lower[j], self.upper[j]));
        }
        self.values_buf.resize(self.core_cols, 0.0);
        for j in 0..self.core_cols {
            self.values_buf[j] = nonbasic_value(self.status[j], self.lower[j], self.upper[j]);
        }

        // Crash plan: per row, the slack absorbs the residual when its bounds
        // allow; otherwise an artificial column carries it through phase 1.
        let mut plans: Vec<CrashPlan> = Vec::with_capacity(m);
        let mut slack_cursor = self.n_struct;
        let mut n_art = 0usize;
        for i in 0..m {
            let mut residual = self.rhs[i];
            let row = &self.matrix[i * self.core_cols..i * self.core_cols + self.n_struct];
            for (a, v) in row.iter().zip(&self.values_buf) {
                residual -= a * v;
            }
            let slack = match self.senses[i] {
                Sense::Eq => None,
                _ => {
                    let col = slack_cursor;
                    slack_cursor += 1;
                    Some(col)
                }
            };
            let slack_feasible = slack
                .map(|col| {
                    residual >= self.core_lower[col] - 1e-12
                        && residual <= self.core_upper[col] + 1e-12
                })
                .unwrap_or(false);
            if slack_feasible {
                plans.push(CrashPlan::Slack {
                    col: slack.expect("slack-feasible row has a slack"),
                    residual,
                });
            } else {
                plans.push(CrashPlan::Artificial {
                    col: self.core_cols + n_art,
                    residual,
                });
                n_art += 1;
            }
        }
        let n = self.core_cols + n_art;
        self.cur_cols = n;

        // Tableau: the core matrix re-strided, plus artificial unit entries.
        self.tab.clear();
        self.tab.resize(m * n, 0.0);
        for i in 0..m {
            self.tab[i * n..i * n + self.core_cols]
                .copy_from_slice(&self.matrix[i * self.core_cols..(i + 1) * self.core_cols]);
        }
        self.rhs_work.clear();
        self.rhs_work.extend_from_slice(&self.rhs);

        self.lower.resize(n, 0.0);
        self.upper.resize(n, 0.0);
        self.status.resize(n, VarStatus::AtLower);
        self.cost.clear();
        self.cost.resize(n, 0.0);
        self.basis.clear();
        self.basis.resize(m, 0);
        self.x_basic.clear();
        self.x_basic.resize(m, 0.0);

        for (i, plan) in plans.iter().enumerate() {
            let (col, residual) = match *plan {
                CrashPlan::Slack { col, residual } => (col, residual),
                CrashPlan::Artificial { col, residual } => {
                    self.tab[i * n + col] = 1.0;
                    if residual >= 0.0 {
                        self.lower[col] = 0.0;
                        self.upper[col] = f64::INFINITY;
                        self.cost[col] = 1.0;
                    } else {
                        self.lower[col] = f64::NEG_INFINITY;
                        self.upper[col] = 0.0;
                        self.cost[col] = -1.0;
                    }
                    (col, residual)
                }
            };
            self.basis[i] = col;
            self.status[col] = VarStatus::Basic(i);
            self.x_basic[i] = residual;
        }

        let mut iterations = 0usize;

        // Phase 1: minimise total artificial magnitude (cost is ±1 on
        // artificials, zero elsewhere — already in `self.cost`).
        let status1 = simplex_phase(
            &mut self.tab,
            &mut self.rhs_work,
            &mut self.x_basic,
            &mut self.basis,
            &mut self.status,
            &self.lower,
            &self.upper,
            &self.cost,
            n,
            m,
            max_iterations,
            deadline,
            &mut iterations,
            &mut self.scratch,
        )?;
        if std::env::var_os("QR_MILP_DEBUG").is_some() {
            eprintln!("[qr-milp] phase1: {iterations} iters, status {status1:?}");
        }
        if status1 == LpStatus::IterationLimit {
            return Ok(LpSolution::without_point(
                LpStatus::IterationLimit,
                self.n_struct,
                iterations,
            ));
        }
        let phase1_obj: f64 = (0..n)
            .map(|j| {
                self.cost[j]
                    * column_value(j, &self.status, &self.x_basic, &self.lower, &self.upper)
            })
            .sum();
        // Judge phase-1 success by re-checking the point against the pristine
        // rows, not only by the (drift-prone) artificial total: a corrupted
        // "feasible" claim must not reach phase 2, and a clean point whose
        // artificial total merely drifted must not be declared infeasible.
        let phase1_point: Vec<f64> = (0..self.n_struct)
            .map(|j| column_value(j, &self.status, &self.x_basic, &self.lower, &self.upper))
            .collect();
        if !self.verify(&phase1_point) {
            let status = if phase1_obj > 1e-6 {
                LpStatus::Infeasible
            } else {
                LpStatus::IterationLimit
            };
            return Ok(LpSolution::without_point(status, self.n_struct, iterations));
        }
        if phase1_obj > 1e-6 {
            // The structural point satisfies the rows, yet a basic artificial
            // still carries a material value: the tableau has drifted. Phase 2
            // would run against clamped-to-zero artificial bounds that its
            // basis violates, and its "optimal" objective could over-prune in
            // branch-and-bound. Report the solve as unreliable instead.
            return Ok(LpSolution::without_point(
                LpStatus::IterationLimit,
                self.n_struct,
                iterations,
            ));
        }

        // Fix artificials to zero for phase 2 so they can never re-enter with
        // a non-zero value.
        for art in self.core_cols..n {
            self.lower[art] = 0.0;
            self.upper[art] = 0.0;
            if !self.status[art].is_basic() {
                self.status[art] = VarStatus::AtLower;
            }
        }

        // Phase 2: minimise the true objective.
        self.cost[..self.core_cols].copy_from_slice(&self.objective);
        for c in self.cost[self.core_cols..].iter_mut() {
            *c = 0.0;
        }
        let status2 = simplex_phase(
            &mut self.tab,
            &mut self.rhs_work,
            &mut self.x_basic,
            &mut self.basis,
            &mut self.status,
            &self.lower,
            &self.upper,
            &self.cost,
            n,
            m,
            max_iterations,
            deadline,
            &mut iterations,
            &mut self.scratch,
        )?;

        match status2 {
            LpStatus::Optimal => match self.package_optimal(iterations) {
                Some(sol) => {
                    self.tableau_valid = true;
                    Ok(sol)
                }
                // Long degenerate stalls can corrupt the in-place tableau. An
                // "optimal" point that does not actually satisfy the model is
                // downgraded to the unreliable status so branch-and-bound
                // never builds an incumbent from it.
                None => Ok(LpSolution::without_point(
                    LpStatus::IterationLimit,
                    self.n_struct,
                    iterations,
                )),
            },
            other => {
                // Unbounded / iteration-limited: report the current point
                // (callers treat it as advisory only — branch-and-bound
                // ignores iteration-limited values and only the root handles
                // Unbounded).
                let mut values = vec![0.0; self.n_struct];
                #[allow(clippy::needless_range_loop)]
                for j in 0..self.n_struct {
                    values[j] =
                        column_value(j, &self.status, &self.x_basic, &self.lower, &self.upper);
                }
                let objective = self.objective_constant
                    + (0..self.n_struct)
                        .map(|j| self.objective[j] * values[j])
                        .sum::<f64>();
                Ok(LpSolution {
                    status: other,
                    objective,
                    values,
                    iterations,
                    warm_started: false,
                })
            }
        }
    }

    /// Extract and verify the optimal point from the current workspace state.
    /// Returns `None` when the point fails verification against the pristine
    /// rows (numerical drift).
    fn package_optimal(&mut self, iterations: usize) -> Option<LpSolution> {
        let mut values = vec![0.0; self.n_struct];
        #[allow(clippy::needless_range_loop)]
        for j in 0..self.n_struct {
            values[j] = column_value(j, &self.status, &self.x_basic, &self.lower, &self.upper);
        }
        if !self.verify(&values) {
            return None;
        }
        let objective = self.objective_constant
            + (0..self.n_struct)
                .map(|j| self.objective[j] * values[j])
                .sum::<f64>();
        Some(LpSolution {
            status: LpStatus::Optimal,
            objective,
            values,
            iterations,
            warm_started: false,
        })
    }

    /// Check a candidate point against the original (un-pivoted) rows and
    /// bounds within a scaled tolerance. Guards against numerical drift in
    /// the pivoted tableau — the solution reported to callers must satisfy
    /// the *model*, not the tableau's opinion of it.
    fn verify(&self, values: &[f64]) -> bool {
        for (j, &v) in values.iter().enumerate().take(self.n_struct) {
            if v < self.lower[j] - 1e-6 || v > self.upper[j] + 1e-6 {
                return false;
            }
        }
        for i in 0..self.n_rows {
            let row = &self.matrix[i * self.core_cols..i * self.core_cols + self.n_struct];
            let activity: f64 = row.iter().zip(values).map(|(a, v)| a * v).sum();
            let tol = 1e-5 * (1.0 + self.rhs[i].abs());
            let ok = match self.senses[i] {
                Sense::Le => activity <= self.rhs[i] + tol,
                Sense::Ge => activity >= self.rhs[i] - tol,
                Sense::Eq => (activity - self.rhs[i]).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

fn initial_status(lower: f64, upper: f64) -> VarStatus {
    if lower.is_finite() {
        VarStatus::AtLower
    } else if upper.is_finite() {
        VarStatus::AtUpper
    } else {
        VarStatus::Free
    }
}

/// Re-anchor a nonbasic status after its bounds changed (a tightened branch
/// can give a previously free column a finite bound, or remove the bound a
/// status referred to entirely).
fn reconcile_status(status: VarStatus, lower: f64, upper: f64) -> VarStatus {
    match status {
        VarStatus::Basic(r) => VarStatus::Basic(r),
        VarStatus::AtLower if lower.is_finite() => VarStatus::AtLower,
        VarStatus::AtUpper if upper.is_finite() => VarStatus::AtUpper,
        _ => initial_status(lower, upper),
    }
}

pub(crate) fn nonbasic_value(status: VarStatus, lower: f64, upper: f64) -> f64 {
    match status {
        VarStatus::AtLower => lower,
        VarStatus::AtUpper => upper,
        VarStatus::Free => 0.0,
        VarStatus::Basic(_) => unreachable!("nonbasic_value called on basic column"),
    }
}

fn column_value(
    col: usize,
    status: &[VarStatus],
    x_basic: &[f64],
    lower: &[f64],
    upper: &[f64],
) -> f64 {
    match status[col] {
        VarStatus::Basic(row) => x_basic[row],
        VarStatus::AtLower => lower[col],
        VarStatus::AtUpper => upper[col],
        VarStatus::Free => 0.0,
    }
}

/// Pivot the tableau (and the maintained `B^-1 b` column) on
/// `(leave_row, enter_col)`, optionally updating a reduced-cost row. The
/// scaled pivot row is left in `pivot_row_buf` for the caller (devex update).
#[allow(clippy::too_many_arguments)]
pub(crate) fn pivot_inplace(
    tab: &mut [f64],
    rhs_work: &mut [f64],
    n: usize,
    m: usize,
    leave_row: usize,
    enter_col: usize,
    reduced: Option<&mut [f64]>,
    pivot_row_buf: &mut Vec<f64>,
) -> f64 {
    let pivot = tab[leave_row * n + enter_col];
    let inv = 1.0 / pivot;
    let pivot_row = &mut tab[leave_row * n..(leave_row + 1) * n];
    for a in pivot_row.iter_mut() {
        *a *= inv;
    }
    rhs_work[leave_row] *= inv;
    // Snapshot the scaled pivot row so the elimination loops below can run on
    // disjoint slices (and autovectorize).
    pivot_row_buf.clear();
    pivot_row_buf.extend_from_slice(&tab[leave_row * n..(leave_row + 1) * n]);
    let pivot_rhs = rhs_work[leave_row];
    for (i, row) in tab.chunks_exact_mut(n).enumerate() {
        if i == leave_row {
            continue;
        }
        let factor = row[enter_col];
        if factor != 0.0 {
            for (a, &p) in row.iter_mut().zip(pivot_row_buf.iter()) {
                *a -= factor * p;
            }
            rhs_work[i] -= factor * pivot_rhs;
        }
    }
    debug_assert_eq!(rhs_work.len(), m);
    if let Some(reduced) = reduced {
        let factor = reduced[enter_col];
        if factor != 0.0 {
            for (r, &p) in reduced.iter_mut().zip(pivot_row_buf.iter()) {
                *r -= factor * p;
            }
        }
    }
    pivot
}

/// Run one primal simplex phase to optimality (w.r.t. `cost`), mutating the
/// tableau, basis and statuses in place.
///
/// Degenerate stalls trigger, in escalating order: randomised pricing, cost
/// perturbation (tiny status-aligned shifts, removed before returning
/// `Optimal`), Bland's rule, and — as a last-resort safety valve — an
/// [`LpStatus::IterationLimit`] bailout.
#[allow(clippy::too_many_arguments)]
fn simplex_phase(
    tab: &mut [f64],
    rhs_work: &mut [f64],
    x_basic: &mut [f64],
    basis: &mut [usize],
    status: &mut [VarStatus],
    lower: &[f64],
    upper: &[f64],
    cost: &[f64],
    n: usize,
    m: usize,
    max_iterations: usize,
    deadline: Option<Instant>,
    iterations: &mut usize,
    scratch: &mut Scratch,
) -> Result<LpStatus> {
    // Working (possibly perturbed) costs and the reduced-cost row, kept
    // consistent by pivoting.
    scratch.work_cost.clear();
    scratch.work_cost.extend_from_slice(cost);
    let mut reduced = std::mem::take(&mut scratch.reduced);
    compute_reduced_costs(tab, basis, &scratch.work_cost, n, m, &mut reduced);
    let bland_threshold = 20 * (n + m) + 2000;
    let mut phase_iters = 0usize;
    // Anti-cycling ladder (see the phase docs): randomised pricing first,
    // then cost perturbation, then Bland.
    let mut degenerate_streak = 0usize;
    let mut perturbed = false;
    let mut perturbation_rounds = 0usize;
    let mut rng_state: u64 = 0x9E37_79B9_7F4A_7C15;
    // Devex reference weights (Forrest–Goldfarb, simplified): pricing by
    // d_j^2 / w_j approximates steepest-edge at a fraction of its cost and
    // cuts the degenerate stalling the plain Dantzig rule exhibits on the
    // big-M refinement LPs by orders of magnitude.
    scratch.devex.clear();
    scratch.devex.resize(n, 1.0);

    let outcome = loop {
        if *iterations >= max_iterations {
            break LpStatus::IterationLimit;
        }
        // Checking the clock every pivot would be noticeable on small LPs;
        // every 64 pivots bounds the overshoot to well under a millisecond.
        if (*iterations).is_multiple_of(64) {
            if let Some(deadline) = deadline {
                if Instant::now() > deadline {
                    break LpStatus::IterationLimit;
                }
            }
        }
        *iterations += 1;
        phase_iters += 1;
        // Bland's rule guarantees escape from a degenerate vertex (or a
        // finite optimality proof), so engage it once perturbation has had
        // its chance. It disengages automatically on real progress.
        let use_bland =
            phase_iters > bland_threshold || (degenerate_streak > 150 && perturbation_rounds >= 2);
        let randomize = !use_bland && degenerate_streak > 8;

        // Cost perturbation: after a sustained stall, shift every nonbasic
        // column's cost away from its bound by a tiny pseudo-random amount.
        // The current statuses stay dual-consistent (the shift only *grows*
        // each reduced cost's distance from the improving side), but exact
        // ties — the fuel of degenerate cycling — are broken. The shift is
        // removed before this phase can return `Optimal`.
        if !perturbed && degenerate_streak > 48 && perturbation_rounds < 2 {
            for j in 0..n {
                let sign = match status[j] {
                    VarStatus::AtLower => 1.0,
                    VarStatus::AtUpper => -1.0,
                    _ => continue,
                };
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                let unit = (rng_state >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
                let eps = sign * (0.5 + unit) * 1e-7 * (1.0 + cost[j].abs());
                scratch.work_cost[j] += eps;
                reduced[j] += eps;
            }
            perturbed = true;
            perturbation_rounds += 1;
            degenerate_streak = 0;
            if std::env::var_os("QR_MILP_DEBUG").is_some() {
                eprintln!(
                    "[qr-milp]   iter {phase_iters}: cost perturbation round {perturbation_rounds}"
                );
            }
        }

        // --- Pricing: pick an entering column and a direction. ---
        let mut entering: Option<(usize, f64, f64)> = None; // (col, direction, score)
        let mut improving_count = 0usize;
        for j in 0..n {
            // A fixed column cannot move; pricing it only buys degenerate
            // bound-flip churn.
            if lower[j] >= upper[j] && !status[j].is_basic() {
                continue;
            }
            let d = reduced[j];
            let (dir, improving) = match status[j] {
                VarStatus::Basic(_) => continue,
                VarStatus::AtLower => (1.0, d < -COST_TOL),
                VarStatus::AtUpper => (-1.0, d > COST_TOL),
                VarStatus::Free => {
                    if d < -COST_TOL {
                        (1.0, true)
                    } else if d > COST_TOL {
                        (-1.0, true)
                    } else {
                        (1.0, false)
                    }
                }
            };
            if !improving {
                continue;
            }
            improving_count += 1;
            let score = d * d / scratch.devex[j];
            if use_bland {
                entering = Some((j, dir, score));
                break;
            }
            if randomize {
                // Reservoir-sample one improving column uniformly.
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                if entering.is_none() || rng_state.is_multiple_of(improving_count as u64) {
                    entering = Some((j, dir, score));
                }
            } else if entering.map(|(_, _, s)| score > s).unwrap_or(true) {
                entering = Some((j, dir, score));
            }
        }
        let Some((enter_col, direction, _)) = entering else {
            if perturbed {
                // Optimal for the perturbed costs: remove the shift and keep
                // pivoting on the true costs (usually zero or a handful of
                // pivots remain).
                scratch.work_cost.copy_from_slice(cost);
                compute_reduced_costs(tab, basis, &scratch.work_cost, n, m, &mut reduced);
                perturbed = false;
                degenerate_streak = 0;
                continue;
            }
            break LpStatus::Optimal;
        };

        // --- Ratio test. ---
        // The entering variable moves away from its bound by `t >= 0` in
        // `direction`; basic variables change by `-direction * t * tab[i][enter_col]`.
        let own_range = upper[enter_col] - lower[enter_col];
        let mut best_t = if own_range.is_finite() {
            own_range
        } else {
            f64::INFINITY
        };
        let mut leaving: Option<(usize, bool)> = None; // (row, leaves_at_upper)
        let mut best_pivot_mag = 0.0f64;
        for i in 0..m {
            let alpha = direction * tab[i * n + enter_col];
            let candidate = if alpha > PIVOT_TOL {
                // Basic variable decreases towards its lower bound.
                let lo = lower[basis[i]];
                lo.is_finite()
                    .then(|| ((x_basic[i] - lo) / alpha, (i, false)))
            } else if alpha < -PIVOT_TOL {
                // Basic variable increases towards its upper bound.
                let up = upper[basis[i]];
                up.is_finite()
                    .then(|| ((up - x_basic[i]) / (-alpha), (i, true)))
            } else {
                None
            };
            let Some((t, which)) = candidate else {
                continue;
            };
            let t = t.max(0.0);
            // Strictly smaller step wins; among (near-)ties prefer the larger
            // pivot element for numerical stability and fewer degenerate
            // follow-up pivots (or the smallest leaving index under Bland).
            let is_tie = (t - best_t).abs() <= 1e-12;
            let better = if t < best_t - 1e-12 {
                true
            } else if is_tie {
                if use_bland {
                    // Bland: prefer the smallest leaving column index.
                    leaving.is_none_or(|(row, _)| basis[i] < basis[row])
                } else {
                    alpha.abs() > best_pivot_mag
                }
            } else {
                false
            };
            if better {
                best_t = t;
                best_pivot_mag = alpha.abs();
                leaving = Some(which);
            }
        }

        if best_t.is_infinite() {
            break LpStatus::Unbounded;
        }
        if best_t <= 1e-12 {
            degenerate_streak += 1;
            // Last-resort safety valve: a stall that survives randomised
            // pricing, two perturbation rounds *and* hundreds of Bland pivots
            // is not going to resolve; long in-place pivot runs only corrupt
            // the tableau. Give up on this LP and let the caller fall back.
            if degenerate_streak > 5000 {
                break LpStatus::IterationLimit;
            }
        } else {
            degenerate_streak = 0;
        }

        // --- Update basic values. ---
        for i in 0..m {
            x_basic[i] -= direction * best_t * tab[i * n + enter_col];
        }

        match leaving {
            None => {
                // Bound flip: the entering column moves to its opposite bound.
                status[enter_col] = match status[enter_col] {
                    VarStatus::AtLower => VarStatus::AtUpper,
                    VarStatus::AtUpper => VarStatus::AtLower,
                    other => other,
                };
            }
            Some((leave_row, leaves_at_upper)) => {
                let leave_col = basis[leave_row];
                // New value of the entering variable.
                let enter_from =
                    nonbasic_value(status[enter_col], lower[enter_col], upper[enter_col]);
                let enter_value = enter_from + direction * best_t;

                // Pivot the tableau on (leave_row, enter_col).
                let pivot = tab[leave_row * n + enter_col];
                if pivot.abs() < PIVOT_TOL {
                    scratch.reduced = reduced;
                    return Err(MilpError::NumericalTrouble(format!(
                        "pivot element too small ({pivot:.3e})"
                    )));
                }
                pivot_inplace(
                    tab,
                    rhs_work,
                    n,
                    m,
                    leave_row,
                    enter_col,
                    Some(&mut reduced),
                    &mut scratch.pivot_row,
                );

                // Devex weight update over the (scaled) pivot row; the
                // leaving column inherits the entering column's reference
                // weight through the pivot element.
                let gamma = scratch.devex[enter_col].max(1.0);
                for (w, &p) in scratch.devex.iter_mut().zip(&scratch.pivot_row) {
                    let candidate = p * p * gamma;
                    if candidate > *w {
                        *w = candidate;
                    }
                }
                scratch.devex[leave_col] = (gamma / (pivot * pivot)).max(1.0);
                scratch.devex[enter_col] = 1.0;
                if scratch.devex.iter().any(|&w| w > 1e8) {
                    // Reference framework reset keeps the weights meaningful.
                    scratch.devex.iter_mut().for_each(|w| *w = 1.0);
                }

                status[leave_col] = if leaves_at_upper {
                    VarStatus::AtUpper
                } else {
                    VarStatus::AtLower
                };
                status[enter_col] = VarStatus::Basic(leave_row);
                basis[leave_row] = enter_col;
                x_basic[leave_row] = enter_value;
            }
        }

        // Periodically refresh reduced costs to limit drift.
        if phase_iters.is_multiple_of(256) {
            compute_reduced_costs(tab, basis, &scratch.work_cost, n, m, &mut reduced);
            if phase_iters.is_multiple_of(2048) && std::env::var_os("QR_MILP_DEBUG").is_some() {
                let obj: f64 = (0..n)
                    .map(|j| cost[j] * column_value(j, status, x_basic, lower, upper))
                    .sum();
                eprintln!(
                    "[qr-milp]   iter {phase_iters}: obj {obj:.6}, degenerate streak {degenerate_streak}"
                );
            }
        }
    };
    scratch.reduced = reduced;
    Ok(outcome)
}

pub(crate) fn compute_reduced_costs(
    tab: &[f64],
    basis: &[usize],
    cost: &[f64],
    n: usize,
    m: usize,
    reduced: &mut Vec<f64>,
) {
    // reduced = cost - cost_B^T * tab
    reduced.clear();
    reduced.extend_from_slice(cost);
    for i in 0..m {
        let cb = cost[basis[i]];
        if cb != 0.0 {
            for j in 0..n {
                reduced[j] -= cb * tab[i * n + j];
            }
        }
    }
    // Basic columns have exactly zero reduced cost by construction.
    for i in 0..m {
        reduced[basis[i]] = 0.0;
    }
}

/// Convenience: build a one-shot workspace and cold-solve the LP relaxation
/// of a model with the given bounds, optionally bounded by a wall-clock
/// deadline. Branch-and-bound keeps a long-lived [`LpWorkspace`] instead.
pub fn solve_lp(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    max_iterations: usize,
    deadline: Option<Instant>,
) -> Result<LpSolution> {
    LpWorkspace::new(model)?.solve(lower, upper, None, max_iterations, deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Model, Sense};

    fn bounds_of(model: &Model) -> (Vec<f64>, Vec<f64>) {
        (
            model.variables().iter().map(|v| v.lower).collect(),
            model.variables().iter().map(|v| v.upper).collect(),
        )
    }

    fn solve(model: &Model) -> LpSolution {
        let (lo, up) = bounds_of(model);
        solve_lp(model, &lo, &up, 100_000, None).unwrap()
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 2y st x + y <= 4, x + 3y <= 6, x,y >= 0  => x=4, y=0, obj=12
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint(
            "c1",
            LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0),
            Sense::Le,
            4.0,
        );
        m.add_constraint(
            "c2",
            LinExpr::term(x, 1.0) + LinExpr::term(y, 3.0),
            Sense::Le,
            6.0,
        );
        m.set_objective(LinExpr::term(x, -3.0) + LinExpr::term(y, -2.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - (-12.0)).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!((s.values[x.index()] - 4.0).abs() < 1e-6);
        assert!(s.values[y.index()].abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y st x + y = 10, x >= 3, y >= 2  => obj = 10
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 3.0, f64::INFINITY);
        let y = m.add_continuous("y", 2.0, f64::INFINITY);
        m.add_constraint(
            "sum",
            LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0),
            Sense::Eq,
            10.0,
        );
        m.set_objective(LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-6);
        assert!((s.values[x.index()] + s.values[y.index()] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", LinExpr::term(x, 1.0), Sense::Ge, 2.0);
        m.set_objective(LinExpr::term(x, 1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.add_constraint("c", LinExpr::term(x, 1.0), Sense::Ge, 1.0);
        m.set_objective(LinExpr::term(x, -1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_respected_without_rows() {
        // min -x - y st x + y <= 10, x <= 3, y <= 4 (bounds, not rows) => obj -7
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, 4.0);
        m.add_constraint(
            "c",
            LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0),
            Sense::Le,
            10.0,
        );
        m.set_objective(LinExpr::term(x, -1.0) + LinExpr::term(y, -1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - (-7.0)).abs() < 1e-6);
        assert!((s.values[x.index()] - 3.0).abs() < 1e-6);
        assert!((s.values[y.index()] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x st x >= -5 (bound), x + 3 >= 0 -> x >= -3 => obj -3
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", -5.0, 5.0);
        m.add_constraint("c", LinExpr::term(x, 1.0), Sense::Ge, -3.0);
        m.set_objective(LinExpr::term(x, 1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - (-3.0)).abs() < 1e-6);
    }

    #[test]
    fn objective_constant_carried_through() {
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, 2.0);
        m.set_objective(LinExpr::term(x, 1.0) + LinExpr::constant(100.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 100.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Several redundant constraints through the same vertex.
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        for i in 0..10 {
            m.add_constraint(
                format!("c{i}"),
                LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0 + i as f64 * 1e-9),
                Sense::Le,
                1.0,
            );
        }
        m.set_objective(LinExpr::term(x, -1.0) + LinExpr::term(y, -1.0));
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 1.0).abs() < 1e-5);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn bigger_random_lp_feasible_and_optimal_bound() {
        // A transportation-style LP with known optimum.
        // min sum_{i,j} c_ij x_ij, row sums = supply, col sums = demand.
        let supplies = [20.0, 30.0, 25.0];
        let demands = [10.0, 25.0, 20.0, 20.0];
        let costs = [
            [8.0, 6.0, 10.0, 9.0],
            [9.0, 12.0, 13.0, 7.0],
            [14.0, 9.0, 16.0, 5.0],
        ];
        let mut m = Model::new("transport");
        let mut vars = vec![];
        for i in 0..3 {
            let mut row = vec![];
            for j in 0..4 {
                row.push(m.add_continuous(format!("x{i}{j}"), 0.0, f64::INFINITY));
            }
            vars.push(row);
        }
        for i in 0..3 {
            let mut e = LinExpr::zero();
            for j in 0..4 {
                e.add_term(vars[i][j], 1.0);
            }
            m.add_constraint(format!("s{i}"), e, Sense::Le, supplies[i]);
        }
        for j in 0..4 {
            let mut e = LinExpr::zero();
            for i in 0..3 {
                e.add_term(vars[i][j], 1.0);
            }
            m.add_constraint(format!("d{j}"), e, Sense::Eq, demands[j]);
        }
        let mut obj = LinExpr::zero();
        for i in 0..3 {
            for j in 0..4 {
                obj.add_term(vars[i][j], costs[i][j]);
            }
        }
        m.set_objective(obj);
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        // The optimum of this instance is 615 (verified by the MODI method:
        // the plan x01=20, x10=10, x12=20, x13=0, x21=5, x23=20 has all
        // non-negative reduced costs).
        for j in 0..4 {
            let col: f64 = (0..3).map(|i| s.values[vars[i][j].index()]).sum();
            assert!((col - demands[j]).abs() < 1e-5);
        }
        for i in 0..3 {
            let row: f64 = (0..4).map(|j| s.values[vars[i][j].index()]).sum();
            assert!(row <= supplies[i] + 1e-5);
        }
        assert!(
            (s.objective - 615.0).abs() < 1e-5,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn warm_start_matches_cold_after_bound_change() {
        // Solve, snapshot, tighten a bound as branching would, and check the
        // warm re-solve agrees with a from-scratch cold solve.
        let mut m = Model::new("warm");
        let x = m.add_continuous("x", 0.0, 4.0);
        let y = m.add_continuous("y", 0.0, 4.0);
        m.add_constraint(
            "c1",
            LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0),
            Sense::Le,
            6.0,
        );
        m.add_constraint(
            "c2",
            LinExpr::term(x, 2.0) + LinExpr::term(y, 1.0),
            Sense::Ge,
            2.0,
        );
        m.set_objective(LinExpr::term(x, -2.0) + LinExpr::term(y, -1.0));
        let (lo, up) = bounds_of(&m);

        let mut ws = LpWorkspace::new(&m).unwrap();
        let root = ws.solve(&lo, &up, None, 10_000, None).unwrap();
        assert_eq!(root.status, LpStatus::Optimal);
        assert!(!root.warm_started);
        let basis = ws.snapshot_basis().expect("optimal solve snapshots");

        // Branch: x <= 1.
        let mut up2 = up.clone();
        up2[x.index()] = 1.0;
        let warm = ws.solve(&lo, &up2, Some(&basis), 10_000, None).unwrap();
        assert!(warm.warm_started, "child solve should take the warm path");
        assert_eq!(warm.status, LpStatus::Optimal);
        let cold = solve_lp(&m, &lo, &up2, 10_000, None).unwrap();
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
    }

    #[test]
    fn warm_start_detects_child_infeasibility() {
        let mut m = Model::new("warm-inf");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constraint(
            "c",
            LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0),
            Sense::Ge,
            5.0,
        );
        m.set_objective(LinExpr::term(x, 1.0) + LinExpr::term(y, 1.0));
        let (lo, up) = bounds_of(&m);
        let mut ws = LpWorkspace::new(&m).unwrap();
        let root = ws.solve(&lo, &up, None, 10_000, None).unwrap();
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = ws.snapshot_basis().unwrap();
        // x <= 1, y <= 2 makes the >= 5 row unsatisfiable.
        let mut up2 = up.clone();
        up2[x.index()] = 1.0;
        up2[y.index()] = 2.0;
        let warm = ws.solve(&lo, &up2, Some(&basis), 10_000, None).unwrap();
        assert_eq!(warm.status, LpStatus::Infeasible);
    }

    #[test]
    fn workspace_is_reusable_across_many_solves() {
        let mut m = Model::new("reuse");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constraint(
            "c",
            LinExpr::term(x, 1.0) + LinExpr::term(y, 2.0),
            Sense::Le,
            10.0,
        );
        m.set_objective(LinExpr::term(x, -1.0) + LinExpr::term(y, -1.0));
        let (lo, up) = bounds_of(&m);
        let mut ws = LpWorkspace::new(&m).unwrap();
        let mut basis: Option<Basis> = None;
        for cap in [10.0, 8.0, 6.0, 4.0, 2.0] {
            let mut up2 = up.clone();
            up2[x.index()] = cap;
            let sol = ws.solve(&lo, &up2, basis.as_ref(), 10_000, None).unwrap();
            assert_eq!(sol.status, LpStatus::Optimal);
            let expected = -(cap + (10.0 - cap) / 2.0);
            assert!(
                (sol.objective - expected).abs() < 1e-6,
                "cap {cap}: got {} want {expected}",
                sol.objective
            );
            basis = ws.snapshot_basis();
            assert!(basis.is_some());
        }
    }
}
