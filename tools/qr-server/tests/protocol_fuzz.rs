//! Property-based fuzzing of the wire-protocol parser: whatever bytes a
//! client sends — truncated requests, interleaved fragments, random garbage,
//! hostile nesting — parsing is *total*: it returns either a parsed request
//! or a structured `bad_request`, and it never panics. (The qr-lint panic
//! rule keeps panics out of the parser's source; these tests keep them out
//! of its behavior.)

use proptest::prelude::*;
use qr_server::protocol::{ErrorKind, Request};
use qr_server::Json;

/// A canonical valid solve line used as mutation raw material.
const VALID: &str = r#"{"op":"solve","id":3,"dataset":"paper","epsilon":0.5,"distance":"QD","deadline_ms":2000,"constraints":[{"attribute":"Gender","value":"F","k":6,"n":3}]}"#;

/// Every parse outcome a hostile line may produce: `Ok`, or a structured
/// `bad_request` with a non-empty message. Anything else (panic, other
/// kinds) fails the property.
fn assert_total(line: &str) {
    match Request::parse(line) {
        Ok(request) => {
            // A parsed request must echo ids losslessly.
            let _ = request.id();
        }
        Err((_, err)) => {
            assert_eq!(err.kind, ErrorKind::BadRequest, "{line:?}");
            assert!(!err.message.is_empty(), "{line:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Truncating a valid request at any byte boundary yields a structured
    /// error (or, for the full line, a parse).
    #[test]
    fn truncations_never_panic(cut in 0usize..200) {
        let cut = cut.min(VALID.len());
        if VALID.is_char_boundary(cut) {
            assert_total(&VALID[..cut]);
        }
    }

    /// Random printable garbage never panics the parser.
    #[test]
    fn printable_garbage_never_panics(line in "[ -~]{0,80}") {
        assert_total(&line);
    }

    /// Raw bytes (lossily decoded, as the connection layer does) never
    /// panic the parser.
    #[test]
    fn raw_bytes_never_panic(bytes in proptest::collection::vec(0u16..256, 0..120)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let line = String::from_utf8_lossy(&bytes);
        assert_total(&line);
    }

    /// Splicing fragments of two requests together — the shape produced by
    /// interleaved writes from a confused client — never panics and never
    /// produces a non-taxonomy error.
    #[test]
    fn interleaved_fragments_never_panic(
        cut_a in 0usize..170,
        cut_b in 0usize..170,
        middle in "[{}\",:a-z0-9]{0,20}",
    ) {
        let cut_a = cut_a.min(VALID.len());
        let cut_b = cut_b.min(VALID.len());
        if VALID.is_char_boundary(cut_a) && VALID.is_char_boundary(cut_b) {
            let spliced = format!("{}{}{}", &VALID[..cut_a], middle, &VALID[cut_b..]);
            assert_total(&spliced);
        }
    }

    /// JSON-shaped noise: structurally valid JSON with arbitrary field
    /// soup parses or rejects, but never panics; field values of the wrong
    /// type are rejected as bad_request.
    #[test]
    fn json_shaped_noise_never_panics(
        op in prop_oneof!["solve", "metrics", "ping", "shutdown", "nope", "[a-z]{0,6}"],
        dataset in prop_oneof!["paper", "tpch", "[a-z_]{0,12}"],
        epsilon in -2.0f64..3.0,
        k in 0u64..20,
        n in 0u64..20,
        deadline in -1000.0f64..5000.0,
    ) {
        let line = format!(
            r#"{{"op":"{op}","dataset":"{dataset}","epsilon":{epsilon},"deadline_ms":{deadline},"constraints":[{{"attribute":"A","value":"x","k":{k},"n":{n}}}]}}"#
        );
        assert_total(&line);
    }

    /// Deep nesting is rejected with a structured error, not a stack
    /// overflow.
    #[test]
    fn nesting_bombs_are_rejected(depth in 1usize..2000) {
        let line = format!(
            r#"{{"op":"solve","dataset":"paper","id":{}{}{}}}"#,
            "[".repeat(depth),
            "0",
            "]".repeat(depth),
        );
        assert_total(&line);
        if depth > qr_server::json::MAX_DEPTH {
            assert!(Request::parse(&line).is_err(), "depth {depth} must be rejected");
        }
    }

    /// The JSON layer itself round-trips whatever the parser accepts.
    #[test]
    fn parsed_values_round_trip(text in "[ -~]{0,60}") {
        if let Ok(v) = Json::parse(&text) {
            let rendered = v.render();
            prop_assert_eq!(Json::parse(&rendered), Ok(v));
        }
    }
}
