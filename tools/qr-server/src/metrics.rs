//! Server-side observability: lock-free request counters, per-stage latency
//! sums, and the aggregated solver statistics behind the `metrics` op.
//!
//! Counters are plain relaxed atomics — they are monotone tallies with no
//! cross-counter invariant, so a metrics scrape may observe a request that
//! has been accepted but not yet finished; that skew is inherent to live
//! counters and harmless. The [`StatsAggregate`] (which *does* update many
//! fields per solve) sits behind a poison-recovering mutex instead.

use crate::json::Json;
use crate::pool::PoolCounters;
use crate::resume::ResumeCounters;
use qr_core::{lock_or_recover, RefinementStats, StatsAggregate};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// All server counters and the solver-stats aggregate. One per server,
/// shared by every connection and worker via `Arc`.
#[derive(Default)]
pub struct Metrics {
    /// Requests admitted to the solve queue.
    pub accepted: AtomicUsize,
    /// Requests refused admission (queue depth / estimated wait).
    pub shed: AtomicUsize,
    /// Admitted solves cancelled because their client went away (or the
    /// server drained) before completion.
    pub cancelled: AtomicUsize,
    /// Admitted solves that hit their deadline and returned a degraded
    /// (incumbent-carrying) response.
    pub timed_out: AtomicUsize,
    /// Admitted solves that completed normally.
    pub completed: AtomicUsize,
    /// Malformed requests answered with `bad_request`.
    pub bad_requests: AtomicUsize,
    /// `resume` requests received (token redemption attempts, valid or not).
    pub resume_ops: AtomicUsize,
    /// Worker panics converted to `internal` errors.
    pub internal_errors: AtomicUsize,
    /// Connections whose read timed out (byte-dribbling or idle clients).
    pub read_timeouts: AtomicUsize,
    /// Total connections accepted.
    pub connections: AtomicUsize,
    /// Current solve-queue depth (incremented at enqueue, decremented when a
    /// worker picks the job up).
    pub queue_depth: AtomicUsize,

    /// Summed time jobs spent waiting in the queue, in microseconds.
    pub queue_wait_us: AtomicU64,
    /// Summed time jobs spent inside `RefinementSession::solve`, in
    /// microseconds.
    pub solve_us: AtomicU64,
    /// Summed time spent building/fetching pool sessions, in microseconds.
    pub session_us: AtomicU64,

    /// Aggregated per-solve statistics (exhaustive-destructure discipline
    /// lives in `qr_core`).
    pub stats: Mutex<StatsAggregate>,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one finished solve's statistics.
    pub fn record_stats(&self, stats: &RefinementStats) {
        lock_or_recover(&self.stats).record(stats);
    }

    /// Add a duration to a microsecond latency counter.
    pub fn add_latency(counter: &AtomicU64, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        counter.fetch_add(us, Ordering::Relaxed);
    }

    /// Render the full metrics payload for a `metrics` response.
    pub fn render(&self, id: Option<&Json>, pool: PoolCounters, resume: ResumeCounters) -> String {
        let load = |c: &AtomicUsize| Json::count(c.load(Ordering::Relaxed));
        let us = |c: &AtomicU64| Json::Num(c.load(Ordering::Relaxed) as f64 / 1e3);

        let server = Json::obj(vec![
            ("accepted", load(&self.accepted)),
            ("shed", load(&self.shed)),
            ("cancelled", load(&self.cancelled)),
            ("timed_out", load(&self.timed_out)),
            ("completed", load(&self.completed)),
            ("bad_requests", load(&self.bad_requests)),
            ("resume_ops", load(&self.resume_ops)),
            ("internal_errors", load(&self.internal_errors)),
            ("read_timeouts", load(&self.read_timeouts)),
            ("connections", load(&self.connections)),
            ("queue_depth", load(&self.queue_depth)),
        ]);
        let latency = Json::obj(vec![
            ("queue_wait_ms", us(&self.queue_wait_us)),
            ("solve_ms", us(&self.solve_us)),
            ("session_ms", us(&self.session_us)),
        ]);
        let pool = Json::obj(vec![
            ("resident_sessions", Json::count(pool.resident)),
            ("session_builds", Json::count(pool.builds)),
            ("session_evictions", Json::count(pool.evictions)),
        ]);
        let resume = Json::obj(vec![
            ("resident_checkpoints", Json::count(resume.resident)),
            ("tokens_issued", Json::count(resume.issued)),
            ("tokens_redeemed", Json::count(resume.redeemed)),
            ("tokens_expired", Json::count(resume.expired)),
            ("tokens_evicted", Json::count(resume.evicted)),
        ]);
        let agg = lock_or_recover(&self.stats).clone();
        let solver = Json::obj(vec![
            ("solves", Json::count(agg.solves)),
            ("interrupted", Json::count(agg.interrupted)),
            ("annotation_ms", Json::millis(agg.annotation_time)),
            ("model_build_ms", Json::millis(agg.model_build_time)),
            ("solver_ms", Json::millis(agg.solver_time)),
            ("total_ms", Json::millis(agg.total_time)),
            ("nodes", Json::count(agg.nodes)),
            ("lp_solves", Json::count(agg.lp_solves)),
            ("simplex_iterations", Json::count(agg.simplex_iterations)),
            ("warm_lp_solves", Json::count(agg.warm_lp_solves)),
            ("cold_lp_solves", Json::count(agg.cold_lp_solves)),
            ("refactorizations", Json::count(agg.refactorizations)),
            ("eta_updates", Json::count(agg.eta_updates)),
            ("resumed_solves", Json::count(agg.resumed_solves)),
            ("nodes_restored", Json::count(agg.nodes_restored)),
            ("resume_captures", Json::count(agg.resume_captures)),
            ("cache_hits", Json::count(agg.cache_hits)),
            ("cache_misses", Json::count(agg.cache_misses)),
            ("cache_warm_starts", Json::count(agg.cache_warm_starts)),
            ("portfolio_races", Json::count(agg.portfolio_races)),
            ("portfolio_wins_milp", Json::count(agg.portfolio_wins_milp)),
            (
                "portfolio_wins_naive",
                Json::count(agg.portfolio_wins_naive),
            ),
            (
                "portfolio_wins_erica",
                Json::count(agg.portfolio_wins_erica),
            ),
            (
                "candidates_evaluated",
                Json::count(agg.candidates_evaluated),
            ),
            ("max_variables", Json::count(agg.max_variables)),
            ("max_constraints", Json::count(agg.max_constraints)),
            ("max_scope", Json::count(agg.max_scope)),
            ("max_lu_nnz", Json::count(agg.max_lu_nnz)),
            ("max_matrix_nnz", Json::count(agg.max_matrix_nnz)),
        ]);

        let mut pairs = vec![
            ("ok".to_string(), Json::Bool(true)),
            ("server".to_string(), server),
            ("latency".to_string(), latency),
            ("pool".to_string(), pool),
            ("resume".to_string(), resume),
            ("solver".to_string(), solver),
        ];
        if let Some(id) = id {
            pairs.insert(0, ("id".to_string(), id.clone()));
        }
        Json::Obj(pairs).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_counter_as_valid_json() {
        let m = Metrics::new();
        m.accepted.store(3, Ordering::Relaxed);
        m.shed.store(1, Ordering::Relaxed);
        Metrics::add_latency(&m.solve_us, Duration::from_millis(5));
        // One cache-hit solve and one portfolio win, so the reuse counters
        // are exercised end to end, not just present.
        let solved = RefinementStats {
            cache_hits: 1,
            portfolio_races: 1,
            portfolio_winner: Some(qr_core::PortfolioBackend::NaiveProvenance),
            ..Default::default()
        };
        m.record_stats(&solved);
        let rendered = m.render(
            Some(&Json::str("m1")),
            PoolCounters {
                resident: 2,
                builds: 4,
                evictions: 2,
            },
            ResumeCounters {
                resident: 1,
                issued: 3,
                redeemed: 2,
                expired: 0,
                evicted: 0,
            },
        );
        let v = Json::parse(&rendered).expect("valid JSON");
        assert_eq!(v.get("id").and_then(Json::as_str), Some("m1"));
        let server = v.get("server").expect("server block");
        assert_eq!(server.get("accepted").and_then(Json::as_u64), Some(3));
        assert_eq!(server.get("shed").and_then(Json::as_u64), Some(1));
        let latency = v.get("latency").expect("latency block");
        assert_eq!(latency.get("solve_ms").and_then(Json::as_f64), Some(5.0));
        let pool = v.get("pool").expect("pool block");
        assert_eq!(
            pool.get("session_evictions").and_then(Json::as_u64),
            Some(2)
        );
        let resume = v.get("resume").expect("resume block");
        assert_eq!(resume.get("tokens_issued").and_then(Json::as_u64), Some(3));
        assert_eq!(
            resume.get("resident_checkpoints").and_then(Json::as_u64),
            Some(1)
        );
        let solver = v.get("solver").expect("solver block");
        assert!(solver.get("solves").is_some());
        assert!(solver.get("resumed_solves").is_some());
        assert!(solver.get("nodes_restored").is_some());
        assert!(solver.get("resume_captures").is_some());
        assert_eq!(solver.get("cache_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(solver.get("cache_misses").and_then(Json::as_u64), Some(0));
        assert!(solver.get("cache_warm_starts").is_some());
        assert_eq!(
            solver.get("portfolio_races").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            solver.get("portfolio_wins_naive").and_then(Json::as_u64),
            Some(1)
        );
        assert!(solver.get("portfolio_wins_milp").is_some());
        assert!(solver.get("portfolio_wins_erica").is_some());
    }

    #[test]
    fn absurd_latencies_clamp_instead_of_panicking() {
        let c = AtomicU64::new(0);
        Metrics::add_latency(&c, Duration::MAX);
        assert_eq!(c.load(Ordering::Relaxed), u64::MAX);
    }
}
