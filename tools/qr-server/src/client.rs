//! A retrying wire client: jittered exponential backoff on `shed` replies,
//! checkpoint chaining on `interrupted` ones.
//!
//! The server already tells clients how to behave under pressure — `shed`
//! errors carry a `retry_after_ms` hint, interrupted solves carry a
//! `resume_token` — but a naive client ignores both and either hammers the
//! queue or restarts its search from scratch. [`RetryingClient`] closes the
//! loop:
//!
//! * a **shed** reply backs off for `max(retry_after_ms, jittered
//!   exponential delay)` and resends the same request, so a burst of
//!   refused clients spreads out instead of thundering back in sync,
//! * an **interrupted** reply with a `resume_token` immediately issues
//!   `{"op":"resume","token":...}` under the same latency budget — every
//!   retry continues the search instead of re-paying the explored tree,
//! * a **connection failure** reconnects after the same backoff (each
//!   attempt uses a fresh connection, so a token minted before a disconnect
//!   is redeemed after the reconnect).
//!
//! The backoff schedule is driven by a seeded xorshift generator
//! ([`Backoff`]), so a fixed [`RetryPolicy::seed`] makes the whole retry
//! behavior reproducible — which is how the unit tests pin it.

use crate::json::Json;
use std::io::{ErrorKind as IoKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// How the client retries: attempt budget, backoff shape, and the jitter
/// seed.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total wire round-trips (initial send, resumes and shed retries all
    /// count) before the client gives up and returns the last response.
    pub max_attempts: usize,
    /// First backoff ceiling; doubles per backoff up to `max_backoff`.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Budget for one connect + send + receive round-trip.
    pub io_timeout: Duration,
    /// Seed for the jitter generator: a fixed seed reproduces the exact
    /// backoff schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            io_timeout: Duration::from_secs(150),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// The jittered exponential backoff schedule: attempt `i`'s ceiling is
/// `min(max_backoff, base_backoff << i)`, and the delay is drawn uniformly
/// from the upper half of `[0, ceiling]` ("equal jitter" — enough spread to
/// desynchronize a burst, never less than half the exponential ceiling).
/// A server-provided `retry_after_ms` hint acts as a floor on top.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    rng: u64,
    attempt: u32,
}

impl Backoff {
    /// A fresh schedule at attempt zero.
    pub fn new(policy: &RetryPolicy) -> Self {
        Backoff {
            base: policy.base_backoff,
            cap: policy.max_backoff,
            // splitmix64 of the seed, so seed 0 still yields a non-zero
            // xorshift state.
            rng: {
                let mut z = policy.seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                (z ^ (z >> 31)) | 1
            },
            attempt: 0,
        }
    }

    /// The next delay, advancing the schedule. `hint` is the server's
    /// `retry_after_ms`, honored as a floor.
    pub fn next_delay(&mut self, hint: Option<Duration>) -> Duration {
        let ceiling = self
            .cap
            .min(self.base.saturating_mul(1u32 << self.attempt.min(20)));
        self.attempt = self.attempt.saturating_add(1);
        // xorshift64*: cheap, seedable, good enough to spread retries.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let draw = self.rng.wrapping_mul(0x2545_f491_4f6c_dd1d);
        let half = ceiling / 2;
        let jitter = if half.is_zero() {
            Duration::ZERO
        } else {
            let span = (half.as_nanos().min(u128::from(u64::MAX - 1)) as u64) + 1;
            Duration::from_nanos(draw % span)
        };
        let delay = half + jitter;
        match hint {
            Some(floor) => delay.max(floor),
            None => delay,
        }
    }
}

/// What a finished [`RetryingClient::solve`] did to get its answer.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// The terminal response (a completed solve, a non-retryable error, or
    /// — with the attempt budget exhausted — the last response seen).
    pub response: Json,
    /// Wire round-trips made (1 for an untroubled solve).
    pub attempts: usize,
    /// `shed` replies absorbed by backing off.
    pub sheds: usize,
    /// Interrupted segments continued via `resume_token`.
    pub resumed_segments: usize,
    /// Total time spent sleeping between attempts.
    pub backed_off: Duration,
}

/// A line-protocol client that retries sheds and chains resume tokens. One
/// fresh connection per attempt; see the [module docs](self) for the loop.
#[derive(Debug, Clone)]
pub struct RetryingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
}

impl RetryingClient {
    /// A client for the server at `addr` with the default [`RetryPolicy`].
    pub fn new(addr: SocketAddr) -> Self {
        RetryingClient {
            addr,
            policy: RetryPolicy::default(),
        }
    }

    /// Override the retry policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Send one solve request line and drive it to a terminal answer,
    /// retrying sheds and resuming interrupted segments.
    pub fn solve(&self, request_line: &str) -> Result<SolveReport, String> {
        self.solve_until(request_line, &|| false)
    }

    /// Like [`solve`](Self::solve), but polls `should_stop` between
    /// attempts and during backoff sleeps and I/O waits, returning an error
    /// promptly once it reports true.
    pub fn solve_until(
        &self,
        request_line: &str,
        should_stop: &dyn Fn() -> bool,
    ) -> Result<SolveReport, String> {
        let request =
            Json::parse(request_line).map_err(|e| format!("request is not valid JSON: {e}"))?;
        let id = request.get("id").cloned();
        let deadline_ms = request.get("deadline_ms").cloned();

        let mut line = request_line.trim().to_string();
        let mut backoff = Backoff::new(&self.policy);
        let mut attempts = 0usize;
        let mut sheds = 0usize;
        let mut resumed_segments = 0usize;
        let mut backed_off = Duration::ZERO;

        loop {
            if should_stop() {
                return Err("cancelled by caller".to_string());
            }
            attempts += 1;
            let out_of_attempts = attempts >= self.policy.max_attempts.max(1);

            let response = match self.roundtrip(&line, should_stop) {
                Ok(raw) => Json::parse(&raw).map_err(|e| format!("bad response {raw:?}: {e}"))?,
                Err(e) if out_of_attempts => return Err(e),
                Err(_) => {
                    // Transient transport failure: back off and reconnect.
                    backed_off += self.sleep(backoff.next_delay(None), should_stop)?;
                    continue;
                }
            };

            let report = |response| SolveReport {
                response,
                attempts,
                sheds,
                resumed_segments,
                backed_off,
            };

            if response.get("ok").and_then(Json::as_bool) == Some(false) {
                let kind = response
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str);
                if kind != Some("shed") || out_of_attempts {
                    // Non-retryable (or out of budget): the structured error
                    // is the answer.
                    return Ok(report(response));
                }
                sheds += 1;
                let hint = response
                    .get("error")
                    .and_then(|e| e.get("retry_after_ms"))
                    .and_then(Json::as_f64)
                    .map(|ms| Duration::from_secs_f64(ms.max(0.0) / 1e3));
                backed_off += self.sleep(backoff.next_delay(hint), should_stop)?;
                continue;
            }

            let interrupted = response.get("outcome").and_then(Json::as_str) == Some("interrupted");
            let token = response.get("resume_token").and_then(Json::as_str);
            match token {
                Some(token) if interrupted && !out_of_attempts => {
                    // Forward progress, no pause: the server handed us a
                    // checkpoint, continue the search under the same budget.
                    resumed_segments += 1;
                    line = resume_line(id.as_ref(), token, deadline_ms.as_ref());
                }
                _ => return Ok(report(response)),
            }
        }
    }

    /// One connect → send → receive round-trip on a fresh connection.
    fn roundtrip(&self, line: &str, should_stop: &dyn Fn() -> bool) -> Result<String, String> {
        let give_up = Instant::now() + self.policy.io_timeout;
        let mut stream = TcpStream::connect_timeout(
            &self.addr,
            self.policy.io_timeout.min(Duration::from_secs(5)),
        )
        .map_err(|e| format!("connect {}: {e}", self.addr))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_write_timeout(Some(self.policy.io_timeout))
            .map_err(|e| format!("set timeout: {e}"))?;
        stream
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|_| stream.flush())
            .map_err(|e| format!("send: {e}"))?;

        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let mut carry: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(nl) = carry.iter().position(|&b| b == b'\n') {
                return Ok(String::from_utf8_lossy(&carry[..nl]).into_owned());
            }
            if should_stop() {
                return Err("cancelled by caller".to_string());
            }
            if Instant::now() >= give_up {
                return Err("no response within the io timeout".to_string());
            }
            match stream.read(&mut chunk) {
                Ok(0) => return Err("server closed the connection".to_string()),
                Ok(n) => carry.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => {}
                Err(e) if e.kind() == IoKind::Interrupted => {}
                Err(e) => return Err(format!("recv: {e}")),
            }
        }
    }

    /// Sleep for `delay` in small slices, aborting early if `should_stop`
    /// turns true. Returns the time actually slept.
    fn sleep(&self, delay: Duration, should_stop: &dyn Fn() -> bool) -> Result<Duration, String> {
        let start = Instant::now();
        let until = start + delay;
        while Instant::now() < until {
            if should_stop() {
                return Err("cancelled by caller".to_string());
            }
            let left = until.saturating_duration_since(Instant::now());
            std::thread::sleep(Duration::from_millis(10).min(left));
        }
        Ok(start.elapsed())
    }
}

/// The follow-up line that redeems `token`, echoing the original request id
/// and latency budget.
fn resume_line(id: Option<&Json>, token: &str, deadline_ms: Option<&Json>) -> String {
    let mut pairs = vec![
        ("op".to_string(), Json::str("resume")),
        ("token".to_string(), Json::str(token)),
    ];
    if let Some(id) = id {
        pairs.insert(0, ("id".to_string(), id.clone()));
    }
    if let Some(ms) = deadline_ms {
        pairs.push(("deadline_ms".to_string(), ms.clone()));
    }
    Json::Obj(pairs).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            seed,
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic_per_seed() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(&policy(seed));
            (0..6).map(|_| b.next_delay(None)).collect()
        };
        assert_eq!(schedule(42), schedule(42), "same seed, same schedule");
        assert_ne!(
            schedule(42),
            schedule(43),
            "different seed, different jitter"
        );
    }

    #[test]
    fn backoff_grows_exponentially_within_bounds() {
        let p = policy(7);
        let mut b = Backoff::new(&p);
        for i in 0..10u32 {
            let ceiling = p.max_backoff.min(p.base_backoff * (1 << i.min(20)));
            let d = b.next_delay(None);
            assert!(d >= ceiling / 2, "attempt {i}: {d:?} below half-ceiling");
            assert!(d <= ceiling, "attempt {i}: {d:?} above ceiling {ceiling:?}");
        }
    }

    #[test]
    fn retry_after_hint_is_a_floor() {
        let mut b = Backoff::new(&policy(1));
        let hint = Duration::from_secs(30); // far above the 2s cap
        assert_eq!(b.next_delay(Some(hint)), hint);
        // A hint below the jittered delay does not shrink it.
        let mut b = Backoff::new(&policy(1));
        let tiny = Duration::from_nanos(1);
        assert!(b.next_delay(Some(tiny)) >= Duration::from_millis(25));
    }

    #[test]
    fn resume_lines_echo_id_and_budget() {
        let id = Json::str("rq-1");
        let ms = Json::Num(250.0);
        let line = resume_line(Some(&id), "rt-f00", Some(&ms));
        let v = Json::parse(&line).expect("valid JSON");
        assert_eq!(v.get("op").and_then(Json::as_str), Some("resume"));
        assert_eq!(v.get("token").and_then(Json::as_str), Some("rt-f00"));
        assert_eq!(v.get("id").and_then(Json::as_str), Some("rq-1"));
        assert_eq!(v.get("deadline_ms").and_then(Json::as_f64), Some(250.0));
        let bare = resume_line(None, "rt-f00", None);
        let v = Json::parse(&bare).expect("valid JSON");
        assert!(v.get("id").is_none() && v.get("deadline_ms").is_none());
    }
}
