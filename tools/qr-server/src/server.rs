//! The server proper: accept loop, per-connection threads, worker pool,
//! admission control, drain.
//!
//! ## Lifecycle of a solve request
//!
//! 1. A connection thread reads one line (bounded size, bounded time) and
//!    parses it.
//! 2. Admission: the request is rejected up front with a
//!    `shed` error when the queue is at capacity or when the EWMA-estimated
//!    wait already exceeds the request's own latency budget. Admitted
//!    requests get a fresh [`CancelToken`] and a reply channel and join the
//!    FIFO queue.
//! 3. A worker pops the job, maps the request's deadline onto the solve's
//!    `SolveControl` (the tightening builders guarantee the composition
//!    with the server's own ceiling can only shorten the budget), and runs
//!    it. Deadline-exceeded solves are *successful* responses carrying the
//!    best incumbent and full statistics — graceful degradation, not an
//!    error.
//! 4. While waiting for the reply, the connection thread polls its socket;
//!    a client that disconnected mid-solve trips the job's token, so the
//!    solver stops within one cancellation-poll interval instead of burning
//!    the queue's time on an answer nobody will read.
//!
//! ## Drain
//!
//! Shutdown (wire op or [`ServerHandle::shutdown`]) stops the accept loop,
//! cancels every registered in-flight token (queued jobs included), and
//! wakes the workers. Workers keep popping until the queue is empty — every
//! admitted job gets exactly one reply, most of them `Interrupted` responses
//! produced nearly instantly by their cancelled tokens — then exit, and the
//! accept thread joins the connection threads so buffered responses are
//! flushed before [`ServerHandle::join`] returns.

use crate::metrics::Metrics;
use crate::pool::SessionPool;
use crate::protocol::{
    render_ack, render_solve_response, Request, ResumeRequest, SolveRequest, WireError,
};
use crate::resume::ResumeTable;
use qr_core::{
    lock_or_recover, CancelToken, RefinementRequest, RefinementResult, RefinementSession,
    SolveControl,
};
use std::collections::VecDeque;
use std::io::{ErrorKind as IoKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked loops re-check cancellation/shutdown.
const POLL: Duration = Duration::from_millis(25);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Number of solve workers.
    pub workers: usize,
    /// Session-pool capacity (LRU beyond this).
    pub pool_capacity: usize,
    /// Maximum queued (admitted, not yet started) solves before shedding.
    pub max_queue_depth: usize,
    /// Budget for receiving one complete request line; also the idle
    /// timeout between requests. A byte-dribbling client is cut off when
    /// its line is still incomplete this long after it started.
    pub read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// Hard per-solve wall-clock ceiling, composed (tightening) with any
    /// per-request deadline.
    pub max_solve_time: Duration,
    /// Maximum suspended solves the resume table keeps (LRU beyond this).
    pub resume_capacity: usize,
    /// How long an unredeemed resume token stays valid.
    pub resume_ttl: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            pool_capacity: 4,
            max_queue_depth: 16,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_solve_time: Duration::from_secs(120),
            resume_capacity: 64,
            resume_ttl: Duration::from_secs(15 * 60),
        }
    }
}

/// What an admitted job asks a worker to run: a fresh solve, or the
/// continuation of a checkpointed one.
enum Work {
    Solve(SolveRequest),
    Resume(ResumeRequest),
}

impl Work {
    fn id(&self) -> Option<&crate::json::Json> {
        match self {
            Work::Solve(s) => s.id.as_ref(),
            Work::Resume(r) => r.id.as_ref(),
        }
    }

    fn deadline(&self) -> Option<Duration> {
        match self {
            Work::Solve(s) => s.deadline,
            Work::Resume(r) => r.deadline,
        }
    }
}

/// One admitted solve job.
struct Job {
    work: Work,
    token: CancelToken,
    token_id: u64,
    enqueued_at: Instant,
    /// Absolute deadline derived from the request's `deadline_ms` at
    /// admission time.
    deadline_at: Option<Instant>,
    reply: SyncSender<String>,
}

/// State shared by the accept loop, connection threads and workers.
pub struct Shared {
    config: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    /// In-flight (queued or solving) cancel tokens, for drain.
    active: Mutex<Vec<(u64, CancelToken)>>,
    next_token_id: AtomicU64,
    /// EWMA of completed solve wall-clock, in microseconds, for the
    /// estimated-wait admission check. Zero until the first completion.
    ewma_solve_us: AtomicU64,
    /// Server counters + aggregated solver statistics.
    pub metrics: Metrics,
    /// The session pool.
    pub pool: SessionPool,
    /// Suspended interrupted solves, redeemable by resume token.
    pub resume_table: ResumeTable,
}

impl Shared {
    /// Whether the server is draining. Named for the cancellation-poll
    /// convention: every blocking loop in this crate checks it.
    pub fn should_stop(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Trigger drain: stop accepting, cancel every in-flight token, clear
    /// the resume table (a draining server never resurrects a solve), wake
    /// the workers. Idempotent.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        for (_, token) in lock_or_recover(&self.active).iter() {
            token.cancel();
        }
        self.resume_table.clear();
        self.queue_cv.notify_all();
    }

    /// Admission control: returns the reply channel for an accepted job, or
    /// a `shed` error with a retry-after hint.
    fn admit(&self, work: Work) -> Result<(Receiver<String>, CancelToken), WireError> {
        let depth = self.metrics.queue_depth.load(Ordering::Relaxed);
        let ewma_us = self.ewma_solve_us.load(Ordering::Relaxed);
        let estimated_wait = Duration::from_micros(ewma_us.saturating_mul(depth as u64 + 1));
        let retry_after = estimated_wait.max(Duration::from_millis(50));

        if depth >= self.config.max_queue_depth {
            self.metrics.shed.fetch_add(1, Ordering::Relaxed);
            return Err(WireError::shed(
                format!("queue is full ({depth} waiting)"),
                retry_after,
            ));
        }
        if let Some(budget) = work.deadline() {
            if estimated_wait > budget {
                self.metrics.shed.fetch_add(1, Ordering::Relaxed);
                return Err(WireError::shed(
                    format!(
                        "estimated wait {:.0}ms exceeds the {:.0}ms deadline",
                        estimated_wait.as_secs_f64() * 1e3,
                        budget.as_secs_f64() * 1e3
                    ),
                    retry_after,
                ));
            }
        }

        let token = CancelToken::new();
        let token_id = self.next_token_id.fetch_add(1, Ordering::Relaxed);
        lock_or_recover(&self.active).push((token_id, token.clone()));
        let now = Instant::now();
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        let job = Job {
            deadline_at: work.deadline().map(|d| now + d),
            work,
            token: token.clone(),
            token_id,
            enqueued_at: now,
            reply: tx,
        };
        {
            // The drain check and the push share the queue lock: workers
            // only exit after observing should_stop with an empty queue
            // under this same lock, so a job pushed here is guaranteed a
            // worker (and exactly one reply).
            let mut queue = lock_or_recover(&self.queue);
            if self.should_stop() {
                drop(queue);
                self.unregister(token_id);
                return Err(WireError::interrupted("server is shutting down"));
            }
            self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
            self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
            queue.push_back(job);
        }
        self.queue_cv.notify_one();
        Ok((rx, token))
    }

    fn unregister(&self, token_id: u64) {
        lock_or_recover(&self.active).retain(|(id, _)| *id != token_id);
    }

    fn note_solve_time(&self, elapsed: Duration) {
        let sample = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let old = self.ewma_solve_us.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            old - old / 8 + sample / 8
        };
        self.ewma_solve_us.store(new, Ordering::Relaxed);
    }
}

/// A running server: its bound address plus handles to stop and join it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state (metrics, pool) for inspection.
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Trigger drain without waiting.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Drain and wait for every thread to finish flushing.
    pub fn join(self) {
        self.shared.begin_shutdown();
        self.wait();
    }

    /// Wait for the server to stop on its own (a wire `shutdown` request)
    /// without triggering the drain from this side.
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers are gone, so nothing can store a checkpoint anymore; this
        // final sweep makes "drain leaves the resume table empty" hold even
        // against a worker's store racing `begin_shutdown`'s clear.
        self.shared.resume_table.clear();
    }
}

/// Bind, spawn the accept loop and workers, and return immediately.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        pool: SessionPool::new(config.pool_capacity),
        resume_table: ResumeTable::new(config.resume_capacity, config.resume_ttl),
        metrics: Metrics::new(),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        active: Mutex::new(Vec::new()),
        next_token_id: AtomicU64::new(0),
        ewma_solve_us: AtomicU64::new(0),
        config,
    });

    let workers = (0..shared.config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("qr-server-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<std::io::Result<Vec<_>>>()?;

    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("qr-server-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_shared))?;

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.should_stop() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("qr-server-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared))
                {
                    connections.push(handle);
                }
            }
            Err(e) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
        connections.retain(|h| !h.is_finished());
    }
    // Drain: flush in-flight connections before reporting the join done.
    for handle in connections {
        let _ = handle.join();
    }
}

/// Outcome of one bounded line read.
enum LineRead {
    Line(String),
    /// Peer closed the connection.
    Eof,
    /// The line did not complete within the read budget.
    TimedOut,
    /// The line exceeded [`crate::protocol::MAX_LINE_BYTES`].
    Oversized,
    /// The server started draining.
    Shutdown,
    /// Hard socket error.
    Gone,
}

/// Read one `\n`-terminated line into `buf`-backed storage, polling so that
/// shutdown and the per-line budget are honored even against a client that
/// dribbles a byte at a time.
fn read_line_bounded(mut stream: &TcpStream, carry: &mut Vec<u8>, shared: &Shared) -> LineRead {
    let deadline = Instant::now() + shared.config.read_timeout;
    let mut chunk = [0u8; 4096];
    loop {
        // Size before newline: a line whose terminator arrives after the
        // limit is already oversized, so the check must not depend on how
        // the bytes were chunked into reads.
        if carry.len() > crate::protocol::MAX_LINE_BYTES {
            return LineRead::Oversized;
        }
        if let Some(nl) = carry.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = carry.drain(..=nl).collect();
            line.pop(); // the \n
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return match String::from_utf8(line) {
                Ok(s) => LineRead::Line(s),
                Err(_) => LineRead::Line("\u{fffd}".to_string()), // parse fails -> bad_request
            };
        }
        if shared.should_stop() {
            return LineRead::Shutdown;
        }
        if Instant::now() >= deadline {
            return LineRead::TimedOut;
        }
        let _ = stream.set_read_timeout(Some(POLL));
        match stream.read(&mut chunk) {
            Ok(0) => return LineRead::Eof,
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => {}
            Err(e) if e.kind() == IoKind::Interrupted => {}
            Err(_) => return LineRead::Gone,
        }
    }
}

/// Whether the peer has closed its end (EOF on peek). `Ok(n > 0)` means the
/// client pipelined more data and is certainly alive.
fn client_gone(stream: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
    match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => false,
        Err(e) if e.kind() == IoKind::Interrupted => false,
        Err(_) => true,
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> bool {
    let mut payload = Vec::with_capacity(line.len() + 1);
    payload.extend_from_slice(line.as_bytes());
    payload.push(b'\n');
    stream
        .write_all(&payload)
        .and_then(|_| stream.flush())
        .is_ok()
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut carry: Vec<u8> = Vec::new();

    loop {
        if shared.should_stop() {
            break;
        }
        let line = match read_line_bounded(&stream, &mut carry, shared) {
            LineRead::Line(l) => l,
            LineRead::Eof | LineRead::Gone => return,
            LineRead::Shutdown => break,
            LineRead::TimedOut => {
                shared.metrics.read_timeouts.fetch_add(1, Ordering::Relaxed);
                let err = WireError::bad_request(format!(
                    "no complete request line within {:.0}ms",
                    shared.config.read_timeout.as_secs_f64() * 1e3
                ));
                let _ = write_line(&mut stream, &err.render(None));
                return;
            }
            LineRead::Oversized => {
                shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                let err = WireError::bad_request(format!(
                    "request line exceeds the {}-byte limit",
                    crate::protocol::MAX_LINE_BYTES
                ));
                let _ = write_line(&mut stream, &err.render(None));
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }

        let request = match Request::parse(&line) {
            Ok(r) => r,
            Err((id, err)) => {
                shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                if !write_line(&mut stream, &err.render(id.as_ref())) {
                    return;
                }
                continue;
            }
        };

        match request {
            Request::Ping { id } => {
                if !write_line(&mut stream, &render_ack(id.as_ref(), "ping")) {
                    return;
                }
            }
            Request::Metrics { id } => {
                let body = shared.metrics.render(
                    id.as_ref(),
                    shared.pool.counters(),
                    shared.resume_table.counters(),
                );
                if !write_line(&mut stream, &body) {
                    return;
                }
            }
            Request::Shutdown { id } => {
                let _ = write_line(&mut stream, &render_ack(id.as_ref(), "shutdown"));
                shared.begin_shutdown();
                return;
            }
            Request::Solve(solve) => {
                let id = solve.id.clone();
                if !dispatch(&mut stream, Work::Solve(*solve), id, shared) {
                    return;
                }
            }
            Request::Resume(resume) => {
                shared.metrics.resume_ops.fetch_add(1, Ordering::Relaxed);
                let id = resume.id.clone();
                if !dispatch(&mut stream, Work::Resume(*resume), id, shared) {
                    return;
                }
            }
        }
    }

    // Draining: tell the client why the connection is going away.
    let err = WireError::interrupted("server is shutting down");
    let _ = write_line(&mut stream, &err.render(None));
}

/// Admit one unit of work and wait for its reply. Returns false when the
/// connection is unusable.
fn dispatch(
    stream: &mut TcpStream,
    work: Work,
    id: Option<crate::json::Json>,
    shared: &Arc<Shared>,
) -> bool {
    match shared.admit(work) {
        Err(err) => write_line(stream, &err.render(id.as_ref())),
        Ok((reply, token)) => await_reply(stream, &reply, &token, shared),
    }
}

/// Wait for the worker's reply while watching the socket for a client that
/// gave up. Returns false when the connection is unusable.
fn await_reply(
    stream: &mut TcpStream,
    reply: &Receiver<String>,
    token: &CancelToken,
    shared: &Shared,
) -> bool {
    let mut gone = false;
    // Liveness backstop: the worker replies well within the solve ceiling;
    // only a worker thread lost to a panic outside the solve's own
    // catch_unwind could miss it.
    let give_up = Instant::now() + shared.config.max_solve_time + Duration::from_secs(30);
    // lint: no-cancel-poll(the drain protocol guarantees exactly one reply per admitted job, and the give_up backstop bounds the wait)
    loop {
        match reply.recv_timeout(POLL) {
            Ok(body) => {
                return !gone && write_line(stream, &body);
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Worker vanished without replying; this is a bug in the
                // drain protocol, surfaced (not hidden) as internal.
                shared
                    .metrics
                    .internal_errors
                    .fetch_add(1, Ordering::Relaxed);
                let err = WireError::internal("worker dropped the request");
                return !gone && write_line(stream, &err.render(None));
            }
            Err(RecvTimeoutError::Timeout) => {
                // should_stop() is handled by the drain protocol itself: the
                // token registry cancels this job and the worker still
                // replies, so keep waiting for that one reply.
                if !gone && client_gone(stream) {
                    gone = true;
                    token.cancel();
                }
                if Instant::now() >= give_up {
                    shared
                        .metrics
                        .internal_errors
                        .fetch_add(1, Ordering::Relaxed);
                    let err = WireError::internal("no worker replied within the solve ceiling");
                    return !gone && write_line(stream, &err.render(None));
                }
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock_or_recover(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.should_stop() {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, POLL)
                    .unwrap_or_else(|p| {
                        let (guard, timeout) = p.into_inner();
                        (guard, timeout)
                    });
                queue = guard;
            }
        };
        let Some(job) = job else {
            // should_stop and the queue is empty: drain complete.
            return;
        };
        process_job(job, shared);
    }
}

fn process_job(job: Job, shared: &Arc<Shared>) {
    let metrics = &shared.metrics;
    metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
    Metrics::add_latency(&metrics.queue_wait_us, job.enqueued_at.elapsed());

    let body = solve_job(&job, shared);
    shared.unregister(job.token_id);
    // The receiver may be gone (client disconnected); dropping the reply
    // then is correct — the job was cancelled and already counted.
    let _ = job.reply.try_send(body);
}

fn solve_job(job: &Job, shared: &Arc<Shared>) -> String {
    let metrics = &shared.metrics;
    let id = job.work.id();

    if job.token.is_cancelled() {
        metrics.cancelled.fetch_add(1, Ordering::Relaxed);
        let reason = if shared.should_stop() {
            "cancelled before starting: server is draining"
        } else {
            "cancelled before starting: client went away"
        };
        return WireError::interrupted(reason).render(id);
    }

    // One execution control per segment: cancel on disconnect/drain, the
    // server's hard ceiling, and the request's own latency budget — the
    // tightening builders guarantee composing them can only shorten the
    // stop.
    let mut control = SolveControl::new()
        .with_cancel_token(job.token.clone())
        .with_time_limit(shared.config.max_solve_time);
    if let Some(deadline_at) = job.deadline_at {
        control = control.with_deadline(deadline_at);
    }

    match &job.work {
        Work::Solve(req) => {
            let session_start = Instant::now();
            let session = match shared.pool.get_or_build(&req.dataset) {
                Ok(s) => s,
                Err(message) => {
                    metrics.internal_errors.fetch_add(1, Ordering::Relaxed);
                    return WireError::internal(message).render(id);
                }
            };
            Metrics::add_latency(&metrics.session_us, session_start.elapsed());

            let request = RefinementRequest::new()
                .with_constraints(req.constraints.clone())
                .with_epsilon(req.epsilon)
                .with_distance(req.distance)
                .with_control(control);
            let solve_start = Instant::now();
            let solved =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.solve(&request)));
            finish_segment(job, shared, &req.dataset, &session, solved, solve_start)
        }
        Work::Resume(req) => {
            let session_start = Instant::now();
            // Redeeming is one-shot: a re-interrupted continuation is stored
            // again under a fresh token by `finish_segment`.
            let Some((dataset, session, resume)) = shared.resume_table.take(&req.token) else {
                metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                return WireError::bad_request("unknown, expired or already-redeemed resume token")
                    .render(id);
            };
            Metrics::add_latency(&metrics.session_us, session_start.elapsed());

            let solve_start = Instant::now();
            let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                session.resume(&resume, &control)
            }));
            finish_segment(job, shared, &dataset, &session, solved, solve_start)
        }
    }
}

/// Common tail of a fresh or resumed solve segment: map panics and errors
/// onto the wire taxonomy, fold statistics into the aggregate, and — when
/// the segment ended interrupted with open search state — park the
/// checkpoint in the resume table and hand its token to the client.
fn finish_segment(
    job: &Job,
    shared: &Arc<Shared>,
    dataset: &str,
    session: &Arc<RefinementSession>,
    solved: std::thread::Result<qr_core::Result<RefinementResult>>,
    solve_start: Instant,
) -> String {
    let metrics = &shared.metrics;
    let id = job.work.id();
    let solve_time = solve_start.elapsed();
    Metrics::add_latency(&metrics.solve_us, solve_time);

    match solved {
        Err(_) => {
            metrics.internal_errors.fetch_add(1, Ordering::Relaxed);
            WireError::internal("solver panicked; the fault is contained to this request")
                .render(id)
        }
        Ok(Err(e)) => {
            // Covers stale resume state too (`CoreError::StaleResume` after
            // a session mutation): the request named a checkpoint that no
            // longer matches reality, which is the client's problem, stated
            // structurally — the server stays healthy.
            metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
            WireError::bad_request(format!("solve rejected: {e}")).render(id)
        }
        Ok(Ok(result)) => {
            metrics.record_stats(&result.stats);
            if result.stats.interrupted {
                if job.token.is_cancelled() {
                    metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                } else {
                    metrics.timed_out.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                metrics.completed.fetch_add(1, Ordering::Relaxed);
                shared.note_solve_time(solve_time);
            }
            // A draining server must not issue new tokens: begin_shutdown
            // already cleared the table and the final sweep in
            // `ServerHandle::wait` catches the store/clear race.
            let token = result
                .resume
                .as_ref()
                .filter(|_| !shared.should_stop())
                .map(|resume| {
                    shared
                        .resume_table
                        .store(dataset, Arc::clone(session), resume.clone())
                });
            render_solve_response(id, &result.outcome, &result.stats, token.as_deref())
        }
    }
}
