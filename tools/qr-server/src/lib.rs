//! # qr-server
//!
//! A networked refinement service over the `qr-core` session API: clients
//! send line-delimited JSON requests over TCP and get refinements (or
//! structured errors) back, one JSON object per line.
//!
//! The server is std-only — `TcpListener` + threads + a hand-rolled JSON
//! layer — because the workspace builds with no registry access. What it
//! adds over a bare `RefinementSession` is the *service* layer the paper's
//! interactive-refinement story needs:
//!
//! * a [session pool](pool::SessionPool) so concurrent requests against the
//!   same (database, query) share one set of provenance annotations,
//! * [admission control](server::Shared) that maps per-request latency
//!   budgets (`deadline_ms`) onto the solver's `SolveControl` and sheds
//!   work *before* queueing it when the estimated wait already blows the
//!   budget,
//! * client-disconnect detection that trips the solve's `CancelToken`, so
//!   abandoned requests stop consuming the queue,
//! * graceful degradation: a deadline-exceeded solve returns the best
//!   incumbent plus full statistics as a *successful* response,
//! * a closed [error taxonomy](protocol::ErrorKind) — `bad_request`,
//!   `shed`, `interrupted`, `internal` — so nothing crosses the socket as a
//!   raw panic,
//! * graceful drain on shutdown, and a `metrics` op dumping aggregated
//!   [`qr_core::StatsAggregate`] numbers plus server counters.
//!
//! See the repository README ("Running the server") for the wire protocol
//! and an example session.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod server;

pub use json::Json;
pub use metrics::Metrics;
pub use pool::SessionPool;
pub use protocol::{ErrorKind, Request, SolveRequest, WireError, MAX_LINE_BYTES};
pub use server::{start, ServerConfig, ServerHandle};
