//! # qr-server
//!
//! A networked refinement service over the `qr-core` session API: clients
//! send line-delimited JSON requests over TCP and get refinements (or
//! structured errors) back, one JSON object per line.
//!
//! The server is std-only — `TcpListener` + threads + a hand-rolled JSON
//! layer — because the workspace builds with no registry access. What it
//! adds over a bare `RefinementSession` is the *service* layer the paper's
//! interactive-refinement story needs:
//!
//! * a [session pool](pool::SessionPool) so concurrent requests against the
//!   same (database, query) share one set of provenance annotations,
//! * [admission control](server::Shared) that maps per-request latency
//!   budgets (`deadline_ms`) onto the solver's `SolveControl` and sheds
//!   work *before* queueing it when the estimated wait already blows the
//!   budget,
//! * client-disconnect detection that trips the solve's `CancelToken`, so
//!   abandoned requests stop consuming the queue,
//! * graceful degradation: a deadline-exceeded solve returns the best
//!   incumbent plus full statistics as a *successful* response,
//! * a closed [error taxonomy](protocol::ErrorKind) — `bad_request`,
//!   `shed`, `interrupted`, `internal` — so nothing crosses the socket as a
//!   raw panic,
//! * graceful drain on shutdown, and a `metrics` op dumping aggregated
//!   [`qr_core::StatsAggregate`] numbers plus server counters,
//! * **resumable solves**: an interrupted solve parks its checkpoint in a
//!   bounded, TTL'd [resume table](resume::ResumeTable) and hands the
//!   client a one-shot `resume_token`; a follow-up `{"op":"resume"}` — on
//!   any connection — continues the search where it stopped, under a fresh
//!   `deadline_ms`. The [retrying client](client::RetryingClient) closes
//!   the loop: jittered exponential backoff on `shed` (honoring
//!   `retry_after_ms`), token chaining on `interrupted`.
//!
//! See the repository README ("Running the server" and "Resumable solves")
//! for the wire protocol and example sessions.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod resume;
pub mod server;

pub use client::{Backoff, RetryPolicy, RetryingClient, SolveReport};
pub use json::Json;
pub use metrics::Metrics;
pub use pool::SessionPool;
pub use protocol::{ErrorKind, Request, ResumeRequest, SolveRequest, WireError, MAX_LINE_BYTES};
pub use resume::{ResumeCounters, ResumeTable};
pub use server::{start, ServerConfig, ServerHandle};
