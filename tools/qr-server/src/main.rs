//! CLI entry point: bind, serve, drain on the wire `shutdown` op.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use qr_server::{start, ServerConfig};
use std::time::Duration;

const USAGE: &str = "usage: qr-server [--addr HOST:PORT] [--workers N] \
    [--max-queue N] [--read-timeout-ms N]
Serves line-delimited JSON refinement requests over TCP; see the README
section \"Running the server\" for the protocol.";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value_of = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value_of("--addr")?,
            "--workers" => {
                config.workers = value_of("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--max-queue" => {
                config.max_queue_depth = value_of("--max-queue")?
                    .parse()
                    .map_err(|e| format!("--max-queue: {e}"))?;
            }
            "--read-timeout-ms" => {
                let ms: u64 = value_of("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?;
                config.read_timeout = Duration::from_millis(ms.max(1));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(config)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let handle = match start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("qr-server: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("qr-server listening on {}", handle.addr());
    // Runs until a client sends {"op":"shutdown"}; the drain then cancels
    // in-flight solves, flushes their responses and lets wait() return.
    handle.wait();
    println!("qr-server: drained, bye");
}
