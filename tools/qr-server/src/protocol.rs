//! The wire protocol: request parsing and response rendering.
//!
//! One JSON object per line, in both directions. Requests name an `op`
//! (`solve`, `resume`, `metrics`, `ping`, `shutdown`); responses echo the request's
//! `id` (when one was given) and carry either the op's payload or a
//! structured error. Errors form a small closed taxonomy — [`ErrorKind`] —
//! so clients can branch on `error.kind` instead of scraping messages, and
//! so nothing that happens inside the server (parse failure, shed,
//! interrupted solve, worker panic) ever crosses the socket as anything but
//! a well-formed error object.

use crate::json::{Json, JsonError};
use qr_core::{
    CardinalityConstraint, ConstraintSet, DistanceMeasure, Group, RefinementOutcome,
    RefinementStats,
};
use qr_relation::sql::ToSql;
use std::str::FromStr;
use std::time::Duration;

/// Longest request line the server will read before rejecting the
/// connection's input as oversized (bytes, including the newline).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Wire-level error taxonomy. Every failure crossing the socket is exactly
/// one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request was malformed: bad JSON, unknown op/dataset, missing or
    /// out-of-range fields, oversized line.
    BadRequest,
    /// The server refused admission (queue too deep or the estimated wait
    /// exceeds the request's latency budget). Retry later; the response
    /// carries a `retry_after_ms` hint.
    Shed,
    /// The solve was interrupted (client went away, server draining) before
    /// producing a payload worth returning.
    Interrupted,
    /// The server failed internally (e.g. a worker panicked). The connection
    /// stays usable.
    Internal,
}

impl ErrorKind {
    /// The wire spelling of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Shed => "shed",
            ErrorKind::Interrupted => "interrupted",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A structured wire error: kind + message (+ optional retry hint for sheds).
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Which taxon the failure belongs to.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// For [`ErrorKind::Shed`]: how long the client should wait before
    /// retrying.
    pub retry_after: Option<Duration>,
}

impl WireError {
    /// A `bad_request` error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        WireError {
            kind: ErrorKind::BadRequest,
            message: message.into(),
            retry_after: None,
        }
    }

    /// A `shed` error with a retry-after hint.
    pub fn shed(message: impl Into<String>, retry_after: Duration) -> Self {
        WireError {
            kind: ErrorKind::Shed,
            message: message.into(),
            retry_after: Some(retry_after),
        }
    }

    /// An `interrupted` error.
    pub fn interrupted(message: impl Into<String>) -> Self {
        WireError {
            kind: ErrorKind::Interrupted,
            message: message.into(),
            retry_after: None,
        }
    }

    /// An `internal` error.
    pub fn internal(message: impl Into<String>) -> Self {
        WireError {
            kind: ErrorKind::Internal,
            message: message.into(),
            retry_after: None,
        }
    }

    /// Render as a one-line JSON response, echoing `id` when present.
    pub fn render(&self, id: Option<&Json>) -> String {
        let mut error = vec![
            ("kind".to_string(), Json::str(self.kind.as_str())),
            ("message".to_string(), Json::str(&self.message)),
        ];
        if let Some(after) = self.retry_after {
            error.push(("retry_after_ms".to_string(), Json::millis(after)));
        }
        let mut pairs = vec![
            ("ok".to_string(), Json::Bool(false)),
            ("error".to_string(), Json::Obj(error)),
        ];
        if let Some(id) = id {
            pairs.insert(0, ("id".to_string(), id.clone()));
        }
        Json::Obj(pairs).render()
    }
}

impl From<JsonError> for WireError {
    fn from(e: JsonError) -> Self {
        WireError::bad_request(format!("invalid JSON: {e}"))
    }
}

/// One parsed solve request.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// Client-chosen request id, echoed verbatim in the response.
    pub id: Option<Json>,
    /// Dataset name: `paper`, `astronauts`, `law_students`, `meps`, `tpch`.
    pub dataset: String,
    /// Maximum deviation ε.
    pub epsilon: f64,
    /// Distance measure.
    pub distance: DistanceMeasure,
    /// Cardinality constraints over the top-k.
    pub constraints: ConstraintSet,
    /// Client latency budget for this request, if any. The server maps it
    /// onto the solve's `SolveControl` deadline and uses it for admission.
    pub deadline: Option<Duration>,
}

/// One parsed resume request: redeem a `resume_token` from an earlier
/// interrupted solve and continue that search under a fresh latency budget.
#[derive(Debug, Clone)]
pub struct ResumeRequest {
    /// Client-chosen request id, echoed verbatim in the response.
    pub id: Option<Json>,
    /// The one-shot token from an earlier interrupted solve response.
    pub token: String,
    /// Latency budget for the resumed segment, if any.
    pub deadline: Option<Duration>,
}

/// Any parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run a refinement solve.
    Solve(Box<SolveRequest>),
    /// Continue an earlier interrupted solve from its checkpoint.
    Resume(Box<ResumeRequest>),
    /// Dump aggregated statistics and server counters.
    Metrics {
        /// Echoed request id.
        id: Option<Json>,
    },
    /// Liveness probe.
    Ping {
        /// Echoed request id.
        id: Option<Json>,
    },
    /// Ask the server to drain and stop.
    Shutdown {
        /// Echoed request id.
        id: Option<Json>,
    },
}

impl Request {
    /// The request's echoed id, if the client provided one.
    pub fn id(&self) -> Option<&Json> {
        match self {
            Request::Solve(s) => s.id.as_ref(),
            Request::Resume(r) => r.id.as_ref(),
            Request::Metrics { id } | Request::Ping { id } | Request::Shutdown { id } => {
                id.as_ref()
            }
        }
    }

    /// Parse one request line. Errors are structured `bad_request`s; the id
    /// comes back alongside so the caller can still echo it.
    pub fn parse(line: &str) -> Result<Request, (Option<Json>, WireError)> {
        if line.len() > MAX_LINE_BYTES {
            return Err((
                None,
                WireError::bad_request(format!(
                    "request line of {} bytes exceeds the {MAX_LINE_BYTES}-byte limit",
                    line.len()
                )),
            ));
        }
        let value = Json::parse(line).map_err(|e| (None, WireError::from(e)))?;
        let id = value.get("id").cloned();
        Self::parse_value(&value, id.clone()).map_err(|e| (id, e))
    }

    fn parse_value(value: &Json, id: Option<Json>) -> Result<Request, WireError> {
        let Some(op) = value.get("op").and_then(Json::as_str) else {
            return Err(WireError::bad_request("missing string field `op`"));
        };
        match op {
            "ping" => Ok(Request::Ping { id }),
            "metrics" => Ok(Request::Metrics { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "solve" => Ok(Request::Solve(Box::new(parse_solve(value, id)?))),
            "resume" => Ok(Request::Resume(Box::new(parse_resume(value, id)?))),
            other => Err(WireError::bad_request(format!(
                "unknown op `{other}` (expected solve, resume, metrics, ping or shutdown)"
            ))),
        }
    }
}

/// Dataset names the `dataset` field accepts.
pub const DATASETS: [&str; 5] = ["paper", "astronauts", "law_students", "meps", "tpch"];

fn parse_solve(value: &Json, id: Option<Json>) -> Result<SolveRequest, WireError> {
    let Some(dataset) = value.get("dataset").and_then(Json::as_str) else {
        return Err(WireError::bad_request("missing string field `dataset`"));
    };
    if !DATASETS.contains(&dataset) {
        return Err(WireError::bad_request(format!(
            "unknown dataset `{dataset}` (expected one of {})",
            DATASETS.join(", ")
        )));
    }

    let epsilon = match value.get("epsilon") {
        None => 0.5,
        Some(v) => match v.as_f64() {
            Some(e) if (0.0..=1.0).contains(&e) => e,
            _ => {
                return Err(WireError::bad_request(
                    "`epsilon` must be a number in [0, 1]",
                ))
            }
        },
    };

    let distance = match value.get("distance") {
        None => DistanceMeasure::Predicate,
        Some(v) => {
            let Some(s) = v.as_str() else {
                return Err(WireError::bad_request("`distance` must be a string"));
            };
            DistanceMeasure::from_str(s)
                .map_err(|e| WireError::bad_request(format!("bad `distance`: {e}")))?
        }
    };

    let deadline = parse_deadline(value)?;

    let mut constraints = ConstraintSet::new();
    if let Some(v) = value.get("constraints") {
        let Some(items) = v.as_arr() else {
            return Err(WireError::bad_request("`constraints` must be an array"));
        };
        if items.len() > 32 {
            return Err(WireError::bad_request("at most 32 constraints per request"));
        }
        for (i, item) in items.iter().enumerate() {
            constraints.push(
                parse_constraint(item).map_err(|e| {
                    WireError::bad_request(format!("constraints[{i}]: {}", e.message))
                })?,
            );
        }
    }

    Ok(SolveRequest {
        id,
        dataset: dataset.to_string(),
        epsilon,
        distance,
        constraints,
        deadline,
    })
}

fn parse_deadline(value: &Json) -> Result<Option<Duration>, WireError> {
    match value.get("deadline_ms") {
        None => Ok(None),
        Some(v) => match v.as_f64() {
            Some(ms) if ms > 0.0 && ms <= 86_400_000.0 => {
                Ok(Some(Duration::from_secs_f64(ms / 1e3)))
            }
            _ => Err(WireError::bad_request(
                "`deadline_ms` must be a positive number of milliseconds (at most one day)",
            )),
        },
    }
}

/// Longest resume token the server will accept; real tokens are far shorter,
/// the bound just keeps a hostile `token` field from being stored anywhere.
const MAX_TOKEN_BYTES: usize = 128;

fn parse_resume(value: &Json, id: Option<Json>) -> Result<ResumeRequest, WireError> {
    let Some(token) = value.get("token").and_then(Json::as_str) else {
        return Err(WireError::bad_request("missing string field `token`"));
    };
    if token.is_empty() || token.len() > MAX_TOKEN_BYTES {
        return Err(WireError::bad_request(format!(
            "`token` must be 1..={MAX_TOKEN_BYTES} bytes"
        )));
    }
    Ok(ResumeRequest {
        id,
        token: token.to_string(),
        deadline: parse_deadline(value)?,
    })
}

fn parse_constraint(item: &Json) -> Result<CardinalityConstraint, WireError> {
    let Some(attribute) = item.get("attribute").and_then(Json::as_str) else {
        return Err(WireError::bad_request("missing string field `attribute`"));
    };
    let Some(value) = item.get("value").and_then(Json::as_str) else {
        return Err(WireError::bad_request("missing string field `value`"));
    };
    let Some(k) = item.get("k").and_then(Json::as_u64) else {
        return Err(WireError::bad_request("missing integer field `k`"));
    };
    let Some(n) = item.get("n").and_then(Json::as_u64) else {
        return Err(WireError::bad_request("missing integer field `n`"));
    };
    if k == 0 || k > 10_000 || n > k {
        return Err(WireError::bad_request("require 0 < k <= 10000 and n <= k"));
    }
    let group = Group::single(attribute, value);
    let (k, n) = (k as usize, n as usize);
    match item.get("bound").and_then(Json::as_str) {
        None | Some("at_least") => Ok(CardinalityConstraint::at_least(group, k, n)),
        Some("at_most") => Ok(CardinalityConstraint::at_most(group, k, n)),
        Some(other) => Err(WireError::bad_request(format!(
            "unknown bound `{other}` (expected at_least or at_most)"
        ))),
    }
}

/// Render a successful solve response (including deadline-exceeded solves,
/// which degrade to `outcome: "interrupted"` with the best incumbent and
/// full stats rather than an error). When the interrupted solve left a
/// redeemable checkpoint, `resume_token` carries the one-shot token a
/// follow-up `{"op":"resume"}` can continue the search with.
pub fn render_solve_response(
    id: Option<&Json>,
    outcome: &RefinementOutcome,
    stats: &RefinementStats,
    resume_token: Option<&str>,
) -> String {
    let (outcome_name, refined) = match outcome {
        RefinementOutcome::Refined(r) => ("refined", Some(r)),
        RefinementOutcome::NoRefinement { proven_infeasible } => (
            if *proven_infeasible {
                "no_refinement"
            } else {
                "no_refinement_within_limits"
            },
            None,
        ),
        RefinementOutcome::Interrupted { best } => ("interrupted", best.as_ref()),
    };
    let refined_json = match refined {
        None => Json::Null,
        Some(r) => Json::obj(vec![
            ("sql", Json::str(r.query.to_sql())),
            ("distance", Json::num(r.distance)),
            ("deviation", Json::num(r.deviation)),
            ("proven_optimal", Json::Bool(r.proven_optimal)),
        ]),
    };
    let stats_json = Json::obj(vec![
        ("total_ms", Json::millis(stats.total_time)),
        ("solver_ms", Json::millis(stats.solver_time)),
        ("model_build_ms", Json::millis(stats.model_build_time)),
        ("nodes", Json::count(stats.nodes)),
        ("lp_solves", Json::count(stats.lp_solves)),
        ("interrupted", Json::Bool(stats.interrupted)),
        ("resumed_solves", Json::count(stats.resumed_solves)),
        ("nodes_restored", Json::count(stats.nodes_restored)),
    ]);
    let mut pairs = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("outcome".to_string(), Json::str(outcome_name)),
        ("refined".to_string(), refined_json),
        ("stats".to_string(), stats_json),
    ];
    if let Some(token) = resume_token {
        pairs.push(("resume_token".to_string(), Json::str(token)));
    }
    if let Some(id) = id {
        pairs.insert(0, ("id".to_string(), id.clone()));
    }
    Json::Obj(pairs).render()
}

/// Render a trivial `{ok:true}` response (ping / shutdown acks), echoing
/// `id` and tagging the op it acknowledges.
pub fn render_ack(id: Option<&Json>, op: &str) -> String {
    let mut pairs = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::str(op)),
    ];
    if let Some(id) = id {
        pairs.insert(0, ("id".to_string(), id.clone()));
    }
    Json::Obj(pairs).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_solve_request() {
        let line = r#"{"op":"solve","id":7,"dataset":"astronauts","epsilon":0.25,
            "distance":"JAC","deadline_ms":1500,
            "constraints":[{"attribute":"Gender","value":"F","k":6,"n":3},
                           {"attribute":"Status","value":"Active","k":5,"n":1,"bound":"at_most"}]}"#
            .replace('\n', " ");
        let Request::Solve(s) = Request::parse(&line).expect("parses") else {
            panic!("not a solve");
        };
        assert_eq!(s.id, Some(Json::Num(7.0)));
        assert_eq!(s.dataset, "astronauts");
        assert_eq!(s.epsilon, 0.25);
        assert_eq!(s.distance, DistanceMeasure::JaccardTopK);
        assert_eq!(s.deadline, Some(Duration::from_millis(1500)));
        assert_eq!(s.constraints.len(), 2);
    }

    #[test]
    fn defaults_match_the_paper() {
        let Request::Solve(s) =
            Request::parse(r#"{"op":"solve","dataset":"paper"}"#).expect("parses")
        else {
            panic!("not a solve");
        };
        assert_eq!(s.epsilon, 0.5);
        assert_eq!(s.distance, DistanceMeasure::Predicate);
        assert!(s.deadline.is_none());
        assert!(s.constraints.is_empty());
    }

    #[test]
    fn rejections_are_structured_and_keep_the_id() {
        for (line, needle) in [
            ("{", "invalid JSON"),
            (r#"{"id":1}"#, "missing string field `op`"),
            (r#"{"op":"nope"}"#, "unknown op"),
            (r#"{"op":"solve"}"#, "`dataset`"),
            (r#"{"op":"solve","dataset":"secret"}"#, "unknown dataset"),
            (r#"{"op":"solve","dataset":"paper","epsilon":2}"#, "epsilon"),
            (
                r#"{"op":"solve","dataset":"paper","deadline_ms":-5}"#,
                "deadline_ms",
            ),
            (
                r#"{"op":"solve","dataset":"paper","constraints":[{"attribute":"A","value":"x","k":0,"n":0}]}"#,
                "constraints[0]",
            ),
        ] {
            let (_, err) = Request::parse(line).expect_err(line);
            assert_eq!(err.kind, ErrorKind::BadRequest, "{line}");
            assert!(err.message.contains(needle), "{line} -> {}", err.message);
        }
        let (id, _) = Request::parse(r#"{"id":"rq-1","op":"wat"}"#).expect_err("bad op");
        assert_eq!(id, Some(Json::str("rq-1")));
    }

    #[test]
    fn parses_a_resume_request() {
        let Request::Resume(r) = Request::parse(
            r#"{"op":"resume","id":"r1","token":"rt-00deadbeef00cafe","deadline_ms":250}"#,
        )
        .expect("parses") else {
            panic!("not a resume");
        };
        assert_eq!(r.id, Some(Json::str("r1")));
        assert_eq!(r.token, "rt-00deadbeef00cafe");
        assert_eq!(r.deadline, Some(Duration::from_millis(250)));

        for (line, needle) in [
            (r#"{"op":"resume"}"#, "missing string field `token`"),
            (r#"{"op":"resume","token":""}"#, "`token` must be"),
            (
                r#"{"op":"resume","token":"t","deadline_ms":0}"#,
                "deadline_ms",
            ),
        ] {
            let (_, err) = Request::parse(line).expect_err(line);
            assert_eq!(err.kind, ErrorKind::BadRequest, "{line}");
            assert!(err.message.contains(needle), "{line} -> {}", err.message);
        }
    }

    #[test]
    fn solve_responses_carry_the_resume_token_only_when_given() {
        let stats = RefinementStats::default();
        let outcome = RefinementOutcome::Interrupted { best: None };
        let with = render_solve_response(None, &outcome, &stats, Some("rt-1"));
        let v = Json::parse(&with).expect("valid JSON");
        assert_eq!(v.get("resume_token").and_then(Json::as_str), Some("rt-1"));
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("interrupted"));
        let without = render_solve_response(None, &outcome, &stats, None);
        let v = Json::parse(&without).expect("valid JSON");
        assert!(v.get("resume_token").is_none());
    }

    #[test]
    fn oversized_lines_are_rejected_before_parsing() {
        let big = format!(r#"{{"op":"ping","pad":"{}"}}"#, "x".repeat(MAX_LINE_BYTES));
        let (_, err) = Request::parse(&big).expect_err("too big");
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(err.message.contains("exceeds"));
    }

    #[test]
    fn error_rendering_is_valid_json_with_the_taxonomy_kind() {
        let shed = WireError::shed("busy", Duration::from_millis(250));
        let rendered = shed.render(Some(&Json::str("req-9")));
        let v = Json::parse(&rendered).expect("valid JSON");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("id").and_then(Json::as_str), Some("req-9"));
        let e = v.get("error").expect("error object");
        assert_eq!(e.get("kind").and_then(Json::as_str), Some("shed"));
        assert_eq!(e.get("retry_after_ms").and_then(Json::as_f64), Some(250.0));
    }
}
