//! The session pool: one long-lived [`RefinementSession`] per (database,
//! query) pair, shared by every request that names it.
//!
//! Sessions are the expensive part of a solve — construction annotates the
//! whole database with provenance. The pool builds each one at most once
//! (per residency) and hands out `Arc`s, so concurrent requests against the
//! same dataset share annotations and the per-request cost drops to model
//! build + solve. A small LRU bound keeps a misbehaving client from pinning
//! unbounded memory by cycling through datasets.

use qr_core::{lock_or_recover, RefinementSession};
use qr_datagen::{DatasetId, Workload};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Pool of refinement sessions keyed by dataset name, with LRU eviction.
pub struct SessionPool {
    capacity: usize,
    inner: Mutex<Inner>,
}

struct Inner {
    /// Dataset name → (session, last-use tick).
    entries: HashMap<String, (Arc<RefinementSession>, u64)>,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
    /// Lifetime count of sessions built (cache misses).
    builds: usize,
    /// Lifetime count of LRU evictions.
    evictions: usize,
}

/// Pool occupancy counters for the metrics endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolCounters {
    /// Sessions currently resident.
    pub resident: usize,
    /// Lifetime cache misses (sessions built).
    pub builds: usize,
    /// Lifetime LRU evictions.
    pub evictions: usize,
}

/// Deterministic seed for the generated benchmark datasets, so every server
/// instance answers a given request against the same data.
const DATASET_SEED: u64 = 20240317;

/// Solution-cache capacity of every pooled session: interactive clients
/// typically sweep ε or re-ask recent questions against the same dataset, so
/// each session keeps this many solved models' bases/incumbents/memos for
/// cross-request warm starts (observable through the `metrics` op's
/// `cache_hits` / `cache_misses` / `cache_warm_starts` counters). Mutation
/// requests bump the snapshot version, which invalidates entries without any
/// coordination.
const SESSION_SOLUTION_CACHE_CAPACITY: usize = 64;

impl SessionPool {
    /// A pool that keeps at most `capacity` sessions resident (minimum 1).
    pub fn new(capacity: usize) -> Self {
        SessionPool {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
                builds: 0,
                evictions: 0,
            }),
        }
    }

    /// Fetch the session for `dataset`, building (and caching) it on a miss.
    ///
    /// Returns `Err` with a human-readable message for unknown dataset names
    /// or session-construction failures — the caller maps it onto a wire
    /// error.
    pub fn get_or_build(&self, dataset: &str) -> Result<Arc<RefinementSession>, String> {
        {
            let mut inner = lock_or_recover(&self.inner);
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((session, last_used)) = inner.entries.get_mut(dataset) {
                *last_used = tick;
                return Ok(Arc::clone(session));
            }
        }

        // Miss: build outside the lock so a slow annotation pass doesn't
        // stall requests for already-resident datasets. Two racing misses
        // may both build; the second insert below defers to the first.
        let session = Arc::new(build_session(dataset)?);

        let mut inner = lock_or_recover(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((existing, last_used)) = inner.entries.get_mut(dataset) {
            *last_used = tick;
            return Ok(Arc::clone(existing));
        }
        inner.builds += 1;
        if inner.entries.len() >= self.capacity {
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(name, _)| name.clone())
            {
                inner.entries.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner
            .entries
            .insert(dataset.to_string(), (Arc::clone(&session), tick));
        Ok(session)
    }

    /// Occupancy counters for the metrics endpoint.
    pub fn counters(&self) -> PoolCounters {
        let inner = lock_or_recover(&self.inner);
        PoolCounters {
            resident: inner.entries.len(),
            builds: inner.builds,
            evictions: inner.evictions,
        }
    }
}

fn build_session(dataset: &str) -> Result<RefinementSession, String> {
    let (db, query) = match dataset {
        "paper" => (
            qr_core::paper_example::paper_database(),
            qr_core::paper_example::scholarship_query(),
        ),
        "astronauts" => split(Workload::new(DatasetId::Astronauts, DATASET_SEED)),
        "law_students" => split(Workload::new(DatasetId::LawStudents, DATASET_SEED)),
        "meps" => split(Workload::new(DatasetId::Meps, DATASET_SEED)),
        "tpch" => split(Workload::new(DatasetId::Tpch, DATASET_SEED)),
        other => return Err(format!("unknown dataset `{other}`")),
    };
    RefinementSession::new(db, query)
        .map(|session| session.with_solution_cache(SESSION_SOLUTION_CACHE_CAPACITY))
        .map_err(|e| format!("session construction failed: {e}"))
}

fn split(w: Workload) -> (qr_relation::Database, qr_relation::SpjQuery) {
    (w.db, w.query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_evicts_in_lru_order() {
        let pool = SessionPool::new(2);
        let a = pool.get_or_build("paper").expect("builds");
        let a2 = pool.get_or_build("paper").expect("cached");
        assert!(Arc::ptr_eq(&a, &a2), "hit returns the same session");
        assert_eq!(pool.counters().builds, 1);

        pool.get_or_build("astronauts").expect("builds");
        // Touch `paper` so `astronauts` is the LRU victim.
        pool.get_or_build("paper").expect("cached");
        pool.get_or_build("tpch")
            .expect("builds, evicting astronauts");
        let c = pool.counters();
        assert_eq!((c.resident, c.builds, c.evictions), (2, 3, 1));

        let a3 = pool.get_or_build("paper").expect("survived eviction");
        assert!(Arc::ptr_eq(&a, &a3));
    }

    #[test]
    fn unknown_datasets_are_an_error_not_a_panic() {
        let pool = SessionPool::new(2);
        let err = pool.get_or_build("nope").expect_err("unknown");
        assert!(err.contains("unknown dataset"));
        assert_eq!(pool.counters().builds, 0);
    }
}
