//! A minimal, allocation-conscious JSON layer (std only — the workspace
//! builds with no registry access, so serde is not an option).
//!
//! The parser is written for a *hostile* wire: it never panics, bounds its
//! recursion depth, decodes `\uXXXX` escapes (including surrogate pairs,
//! with lone surrogates replaced by U+FFFD), rejects trailing garbage, and
//! reports byte offsets in its errors so the server can echo a precise
//! structured `bad_request` back to the client. The writer emits only valid
//! JSON: non-finite numbers serialize as `null` rather than producing
//! `NaN`/`inf` tokens no parser would accept.

use std::fmt;

/// Maximum nesting depth the parser accepts. Requests are flat objects; a
/// deeply nested payload is an attack (stack exhaustion), not a request.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys keep the last value on
    /// lookup, matching common JSON-library behavior).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Json {
    /// Parse one complete JSON value from `text`; trailing non-whitespace is
    /// an error (one request per line means one value per line).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.at < p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (last duplicate wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one (rejects
    /// fractional, negative, and unrepresentably large numbers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor: a number from anything numeric.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// A number from a `usize` counter (metrics counters are well below the
    /// 2^53 exact-integer range of `f64`).
    pub fn count(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// A duration in (fractional) milliseconds.
    pub fn millis(d: std::time::Duration) -> Json {
        Json::Num(d.as_secs_f64() * 1e3)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional downgrade.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.at,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected byte 0x{other:02x}"))),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-scan the UTF-8 sequence starting at the byte we just
                    // consumed; the input is a &str so it is valid UTF-8.
                    let from = self.at - 1;
                    let s = match std::str::from_utf8(&self.bytes[from..]) {
                        Ok(s) => s,
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    };
                    let Some(c) = s.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.at = from + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + digit;
            self.at += 1;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            // High surrogate: needs a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') && self.bytes.get(self.at + 1) == Some(&b'u') {
                self.at += 2;
                let lo = self.hex4()?;
                if (0xdc00..0xe000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    return Ok(char::from_u32(c).unwrap_or('\u{fffd}'));
                }
                // A valid BMP char after a lone high surrogate: keep it,
                // substituting the surrogate itself.
                if let Some(c) = char::from_u32(lo) {
                    // The lone high surrogate degrades to U+FFFD; emitting
                    // only the replacement would drop `c`, so this arm keeps
                    // parsing lossy-but-total.
                    return Ok(c);
                }
            }
            return Ok('\u{fffd}');
        }
        Ok(char::from_u32(hi).unwrap_or('\u{fffd}'))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let from = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let digits_from = self.at;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.at == digits_from {
            return Err(self.err("number is missing digits"));
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            let frac_from = self.at;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
            if self.at == frac_from {
                return Err(self.err("number is missing fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            let exp_from = self.at;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
            if self.at == exp_from {
                return Err(self.err("number is missing exponent digits"));
            }
        }
        let text = match std::str::from_utf8(&self.bytes[from..self.at]) {
            Ok(t) => t,
            Err(_) => return Err(self.err("invalid UTF-8 in number")),
        };
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("number out of range")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_arrays_and_objects() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-12",
            "3.5",
            "\"hi\"",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}",
        ] {
            let v = Json::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(Json::parse(&v.render()), Ok(v), "round trip of {text}");
        }
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let v = Json::parse(r#""a\"b\\c\ndé 😀""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{e9} \u{1f600}"));
        assert_eq!(Json::parse(&v.render()).as_ref(), Ok(&v));
        // Lone surrogate degrades to the replacement char, not a panic.
        let lone = Json::parse(r#""\ud800""#).expect("total");
        assert_eq!(lone.as_str(), Some("\u{fffd}"));
    }

    #[test]
    fn structured_errors_never_panics() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "nul",
            "01a",
            "\"unterminated",
            "1e",
            "-",
            "{\"a\":1}x",
            "\u{7}",
            "1e999",
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(!err.message.is_empty());
        }
        // Depth bomb: rejected, not a stack overflow.
        let bomb = "[".repeat(4000) + &"]".repeat(4000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn accessors_and_writers() {
        let v = Json::obj(vec![
            ("n", Json::num(4.0)),
            ("s", Json::str("x")),
            ("b", Json::Bool(true)),
            ("inf", Json::Num(f64::INFINITY)),
        ]);
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert!(v.render().contains("\"inf\":null"), "{}", v.render());
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Num(-3.0).render(), "-3");
    }
}
