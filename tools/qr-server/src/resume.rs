//! The resume-token table: server-side storage for suspended solves.
//!
//! When a solve ends interrupted with checkpointable search state, the
//! worker stores the [`SessionResume`] here and puts the returned token in
//! the wire response. A follow-up `{"op":"resume","token":...}` — on the
//! same connection or a brand-new one — redeems the token and continues the
//! search where it stopped.
//!
//! The table is deliberately bounded in every dimension a client could
//! abuse:
//!
//! * **capacity** — beyond it the least-recently-stored/redeemed entry is
//!   evicted (a frontier of warm bases is the most memory-expensive thing a
//!   request can pin on the server),
//! * **TTL** — entries expire after a configurable age; expired entries are
//!   swept opportunistically on every store/take and refuse redemption,
//! * **drain** — [`ResumeTable::clear`] empties the table when the server
//!   shuts down, so a draining server never resurrects a solve.
//!
//! Tokens are one-shot: redeeming removes the entry, and a re-interrupted
//! resumed solve stores its new state under a *fresh* token. Token strings
//! mix a per-table random nonce into a serial counter, so they are not
//! guessable across servers, but they are capabilities only in the
//! rate-limiting sense — the payloads they guard are query refinements, not
//! secrets.

use qr_core::SessionResume;
use qr_core::{lock_or_recover, RefinementSession};
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One suspended solve, waiting for its token to be redeemed.
struct Entry {
    /// Dataset the interrupted solve ran against (names the pool session).
    dataset: String,
    /// The session whose snapshot the checkpoint is pinned to. Holding the
    /// `Arc` keeps the checkpoint redeemable even if the pool's LRU evicts
    /// the dataset in the meantime.
    session: Arc<RefinementSession>,
    /// The suspended search state.
    resume: SessionResume,
    /// When the entry was stored (for TTL expiry).
    stored_at: Instant,
    /// Last-use tick backing the LRU order.
    last_touched: u64,
}

struct Inner {
    entries: HashMap<String, Entry>,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
    /// Serial part of the next token.
    next_serial: u64,
    /// Lifetime tokens issued.
    issued: usize,
    /// Lifetime tokens redeemed (successful `take`s).
    redeemed: usize,
    /// Lifetime entries dropped by TTL expiry.
    expired: usize,
    /// Lifetime entries dropped by LRU eviction.
    evicted: usize,
}

/// Occupancy and lifetime counters for the metrics endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeCounters {
    /// Entries currently resident.
    pub resident: usize,
    /// Lifetime tokens issued.
    pub issued: usize,
    /// Lifetime tokens redeemed.
    pub redeemed: usize,
    /// Lifetime entries dropped by TTL expiry.
    pub expired: usize,
    /// Lifetime entries dropped by LRU eviction.
    pub evicted: usize,
}

/// Bounded, TTL'd, LRU-evicted storage of suspended solves keyed by resume
/// token. One per server, shared by every worker.
pub struct ResumeTable {
    capacity: usize,
    ttl: Duration,
    /// Per-table random nonce mixed into every token.
    nonce: u64,
    inner: Mutex<Inner>,
}

impl ResumeTable {
    /// A table holding at most `capacity` suspended solves (minimum 1), each
    /// redeemable for `ttl` after it is stored.
    pub fn new(capacity: usize, ttl: Duration) -> Self {
        ResumeTable {
            capacity: capacity.max(1),
            ttl,
            nonce: RandomState::new().build_hasher().finish(),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
                next_serial: 0,
                issued: 0,
                redeemed: 0,
                expired: 0,
                evicted: 0,
            }),
        }
    }

    /// Store one suspended solve and return its fresh, one-shot token.
    ///
    /// Sweeps expired entries first; if the table is still full, the
    /// least-recently-touched entry is evicted to make room.
    pub fn store(
        &self,
        dataset: &str,
        session: Arc<RefinementSession>,
        resume: SessionResume,
    ) -> String {
        let now = Instant::now();
        let mut inner = lock_or_recover(&self.inner);
        Self::sweep(&mut inner, now, self.ttl);
        if inner.entries.len() >= self.capacity {
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_touched)
                .map(|(token, _)| token.clone())
            {
                inner.entries.remove(&victim);
                inner.evicted += 1;
            }
        }
        let serial = inner.next_serial;
        inner.next_serial += 1;
        let token = format!("rt-{:016x}", mix(self.nonce, serial));
        inner.tick += 1;
        let tick = inner.tick;
        inner.issued += 1;
        inner.entries.insert(
            token.clone(),
            Entry {
                dataset: dataset.to_string(),
                session,
                resume,
                stored_at: now,
                last_touched: tick,
            },
        );
        token
    }

    /// Redeem a token: remove and return its suspended solve, or `None` for
    /// a token that is unknown, already redeemed, expired, or cleared by a
    /// drain.
    pub fn take(&self, token: &str) -> Option<(String, Arc<RefinementSession>, SessionResume)> {
        let now = Instant::now();
        let mut inner = lock_or_recover(&self.inner);
        Self::sweep(&mut inner, now, self.ttl);
        let entry = inner.entries.remove(token)?;
        inner.redeemed += 1;
        Some((entry.dataset, entry.session, entry.resume))
    }

    /// Drop every entry (drain): a shutting-down server never resurrects a
    /// suspended solve.
    pub fn clear(&self) {
        let mut inner = lock_or_recover(&self.inner);
        let dropped = inner.entries.len();
        inner.entries.clear();
        inner.expired += dropped;
    }

    /// Occupancy and lifetime counters for the metrics endpoint.
    pub fn counters(&self) -> ResumeCounters {
        let mut inner = lock_or_recover(&self.inner);
        Self::sweep(&mut inner, Instant::now(), self.ttl);
        ResumeCounters {
            resident: inner.entries.len(),
            issued: inner.issued,
            redeemed: inner.redeemed,
            expired: inner.expired,
            evicted: inner.evicted,
        }
    }

    fn sweep(inner: &mut Inner, now: Instant, ttl: Duration) {
        let before = inner.entries.len();
        inner
            .entries
            .retain(|_, e| now.duration_since(e.stored_at) <= ttl);
        inner.expired += before - inner.entries.len();
    }
}

/// splitmix64 finalizer: spreads the serial across the token bits so
/// consecutive tokens share no visible structure.
fn mix(nonce: u64, serial: u64) -> u64 {
    let mut z = nonce ^ serial.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qr_core::paper_example::{paper_database, scholarship_query};
    use qr_core::{CancelToken, RefinementRequest, SolveControl};

    fn suspended() -> (Arc<RefinementSession>, SessionResume) {
        let session =
            Arc::new(RefinementSession::new(paper_database(), scholarship_query()).unwrap());
        let token = CancelToken::new();
        token.cancel();
        // Constraints the original query violates at ε = 0, so the session's
        // exact fast path cannot answer before the solver sees the cancelled
        // token and checkpoints.
        let request = RefinementRequest::new()
            .with_constraint(qr_core::CardinalityConstraint::at_least(
                qr_core::Group::single("Gender", "F"),
                6,
                3,
            ))
            .with_constraint(qr_core::CardinalityConstraint::at_most(
                qr_core::Group::single("Income", "High"),
                3,
                1,
            ))
            .with_epsilon(0.0)
            .with_cancel_token(token);
        let result = session.solve(&request).unwrap();
        let resume = result.resume.expect("pre-cancelled solve checkpoints");
        (session, resume)
    }

    #[test]
    fn tokens_are_one_shot_and_unique() {
        let (session, resume) = suspended();
        let table = ResumeTable::new(4, Duration::from_secs(60));
        let t1 = table.store("paper", Arc::clone(&session), resume.clone());
        let t2 = table.store("paper", Arc::clone(&session), resume);
        assert_ne!(t1, t2);
        assert!(table.take(&t1).is_some());
        assert!(table.take(&t1).is_none(), "redeeming consumes the entry");
        let c = table.counters();
        assert_eq!((c.resident, c.issued, c.redeemed), (1, 2, 1));
    }

    #[test]
    fn capacity_evicts_the_least_recently_stored() {
        let (session, resume) = suspended();
        let table = ResumeTable::new(2, Duration::from_secs(60));
        let t1 = table.store("paper", Arc::clone(&session), resume.clone());
        let t2 = table.store("paper", Arc::clone(&session), resume.clone());
        let t3 = table.store("paper", Arc::clone(&session), resume);
        assert!(table.take(&t1).is_none(), "t1 was the LRU victim");
        assert!(table.take(&t2).is_some());
        assert!(table.take(&t3).is_some());
        assert_eq!(table.counters().evicted, 1);
    }

    #[test]
    fn ttl_expires_entries_and_clear_drops_everything() {
        let (session, resume) = suspended();
        let table = ResumeTable::new(4, Duration::from_millis(20));
        let t = table.store("paper", Arc::clone(&session), resume.clone());
        std::thread::sleep(Duration::from_millis(60));
        assert!(table.take(&t).is_none(), "expired token refuses redemption");
        assert_eq!(table.counters().expired, 1);

        let long = ResumeTable::new(4, Duration::from_secs(60));
        long.store("paper", Arc::clone(&session), resume.clone());
        long.store("paper", Arc::clone(&session), resume);
        long.clear();
        assert_eq!(long.counters().resident, 0, "drain clears the table");
    }

    #[test]
    fn redeemed_state_actually_resumes() {
        let (session, resume) = suspended();
        let table = ResumeTable::new(4, Duration::from_secs(60));
        let token = table.store("paper", Arc::clone(&session), resume);
        let (dataset, session, resume) = table.take(&token).expect("redeemable");
        assert_eq!(dataset, "paper");
        let result = session.resume(&resume, &SolveControl::new()).unwrap();
        assert!(result.outcome.refined().is_some(), "resume completes");
        assert!(result.stats.nodes_restored > 0);
    }
}
