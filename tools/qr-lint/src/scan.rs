//! A lightweight Rust source scanner: enough lexing to separate code from
//! comments and string/char literals, locate `#[cfg(test)]` modules, and
//! match braces — without pulling in a real parser (the lint is a
//! zero-dependency CI gate).
//!
//! The scanner produces a *cleaned* copy of the source in which every
//! comment and every string/char literal is replaced by spaces, byte for
//! byte, newlines preserved. Offsets and line numbers in the cleaned text
//! therefore agree exactly with the original, so rules can scan the cleaned
//! text for tokens (`1e-7`, `unwrap(`, `while`) without false positives
//! from prose, and report accurate locations. Comment *text* is kept
//! separately, per line, because that is where lint waivers live.

/// A scanned source file: blanked code plus per-line comment text.
pub struct CleanSource {
    /// The source with comments and string/char literals blanked to spaces
    /// (same byte length and line structure as the original).
    pub code: String,
    /// Concatenated comment text per 1-indexed line (empty when the line has
    /// no comment). Multi-line block comments contribute to each line they
    /// span.
    comment_by_line: Vec<String>,
}

impl CleanSource {
    /// Scan `source` into cleaned code + comment map.
    pub fn new(source: &str) -> Self {
        Scanner::new(source).run()
    }

    /// The comment text attached to 1-indexed `line` (empty if none).
    pub fn comment_on(&self, line: usize) -> &str {
        self.comment_by_line
            .get(line.wrapping_sub(1))
            .map(|s| s.as_str())
            .unwrap_or("")
    }

    /// Whether `line` or the line directly above carries the given waiver
    /// marker (e.g. `lint: no-cancel-poll(`) in a comment. Waivers must
    /// state a reason inside the parentheses.
    pub fn has_waiver(&self, line: usize, marker: &str) -> bool {
        let carries = |l: usize| {
            let text = self.comment_on(l);
            match text.find(marker) {
                Some(at) => {
                    let rest = &text[at + marker.len()..];
                    // Non-empty reason before the closing parenthesis.
                    rest.find(')').map(|close| close > 0).unwrap_or(false)
                }
                None => false,
            }
        };
        carries(line) || (line > 1 && carries(line - 1))
    }
}

/// 1-indexed line number of byte `offset` in `text`.
pub fn line_of(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

struct Scanner<'a> {
    src: &'a [u8],
    i: usize,
    line: usize,
    out: Vec<u8>,
    comment_by_line: Vec<String>,
}

impl<'a> Scanner<'a> {
    fn new(source: &'a str) -> Self {
        let lines = source.lines().count().max(1);
        Scanner {
            src: source.as_bytes(),
            i: 0,
            line: 1,
            out: Vec::with_capacity(source.len()),
            comment_by_line: vec![String::new(); lines + 1],
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.i + ahead).copied().unwrap_or(0)
    }

    /// Copy the current byte to the output verbatim.
    fn keep(&mut self) {
        let b = self.src[self.i];
        if b == b'\n' {
            self.line += 1;
        }
        self.out.push(b);
        self.i += 1;
    }

    /// Blank the current byte (newlines stay newlines so lines align);
    /// optionally record it as comment text on the current line.
    fn blank(&mut self, record_comment: bool) {
        let b = self.src[self.i];
        if b == b'\n' {
            self.out.push(b'\n');
            self.line += 1;
        } else {
            self.out.push(b' ');
            if record_comment {
                if let Some(buf) = self.comment_by_line.get_mut(self.line - 1) {
                    buf.push(b as char);
                }
            }
        }
        self.i += 1;
    }

    fn run(mut self) -> CleanSource {
        while self.i < self.src.len() {
            let b = self.src[self.i];
            match b {
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string_literal(),
                b'r' | b'b' if self.raw_string_ahead() => self.raw_string(),
                b'b' if self.peek(1) == b'"' && !self.prev_is_ident() => {
                    self.keep(); // the `b` prefix
                    self.string_literal();
                }
                b'\'' => self.char_or_lifetime(),
                _ => self.keep(),
            }
        }
        CleanSource {
            code: String::from_utf8(self.out).expect("blanking preserves UTF-8"),
            comment_by_line: self.comment_by_line,
        }
    }

    fn prev_is_ident(&self) -> bool {
        self.i > 0 && {
            let p = self.src[self.i - 1];
            p.is_ascii_alphanumeric() || p == b'_'
        }
    }

    fn line_comment(&mut self) {
        while self.i < self.src.len() && self.src[self.i] != b'\n' {
            self.blank(true);
        }
    }

    fn block_comment(&mut self) {
        let mut depth = 0usize;
        while self.i < self.src.len() {
            if self.src[self.i] == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.blank(true);
                self.blank(true);
            } else if self.src[self.i] == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.blank(true);
                self.blank(true);
                if depth == 0 {
                    return;
                }
            } else {
                self.blank(true);
            }
        }
    }

    fn string_literal(&mut self) {
        self.blank(false); // opening quote
        while self.i < self.src.len() {
            match self.src[self.i] {
                b'\\' => {
                    self.blank(false);
                    if self.i < self.src.len() {
                        self.blank(false);
                    }
                }
                b'"' => {
                    self.blank(false);
                    return;
                }
                _ => self.blank(false),
            }
        }
    }

    /// Does `r`, `r#`, `br#`… followed by a quote start here (and not inside
    /// an identifier)?
    fn raw_string_ahead(&self) -> bool {
        if self.prev_is_ident() {
            return false;
        }
        let mut j = self.i;
        if self.src[j] == b'b' {
            j += 1;
        }
        if self.src.get(j) != Some(&b'r') {
            return false;
        }
        j += 1;
        while self.src.get(j) == Some(&b'#') {
            j += 1;
        }
        self.src.get(j) == Some(&b'"')
    }

    fn raw_string(&mut self) {
        if self.src[self.i] == b'b' {
            self.keep();
        }
        self.keep(); // the `r`
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            self.keep();
            hashes += 1;
        }
        self.blank(false); // opening quote
        'scan: while self.i < self.src.len() {
            if self.src[self.i] == b'"' {
                for k in 0..hashes {
                    if self.peek(1 + k) != b'#' {
                        self.blank(false);
                        continue 'scan;
                    }
                }
                self.blank(false); // closing quote
                for _ in 0..hashes {
                    self.keep();
                }
                return;
            }
            self.blank(false);
        }
    }

    fn char_or_lifetime(&mut self) {
        // `'\...'` is always a char literal; `'x'` is a char literal when the
        // byte after next closes it; otherwise it is a lifetime (kept as
        // code, it contains no tokens the rules care about).
        if self.peek(1) == b'\\' {
            self.blank(false); // quote
            while self.i < self.src.len() && self.src[self.i] != b'\'' {
                if self.src[self.i] == b'\\' {
                    self.blank(false);
                    if self.i < self.src.len() {
                        self.blank(false);
                    }
                } else {
                    self.blank(false);
                }
            }
            if self.i < self.src.len() {
                self.blank(false); // closing quote
            }
        } else if self.peek(2) == b'\'' && self.peek(1) != b'\'' {
            self.blank(false);
            self.blank(false);
            self.blank(false);
        } else {
            self.keep(); // lifetime tick (or stray quote)
        }
    }
}

/// Return the offset of the `}` matching the `{` at `open`, if any.
pub fn matching_brace(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    debug_assert_eq!(bytes[open], b'{');
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Blank every `#[cfg(test)] mod … { … }` span in already-cleaned code
/// (newlines preserved), so rules that exempt test code can scan the result
/// directly.
pub fn strip_test_modules(clean_code: &str) -> String {
    const ATTR: &str = "#[cfg(test)]";
    let mut out = clean_code.as_bytes().to_vec();
    let mut from = 0usize;
    while let Some(at) = clean_code[from..].find(ATTR).map(|p| p + from) {
        from = at + ATTR.len();
        // The attribute must introduce a `mod`; skip whitespace and further
        // attributes to find the item keyword.
        let mut j = at + ATTR.len();
        let bytes = clean_code.as_bytes();
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if clean_code[j..].starts_with("#[") {
                match clean_code[j..].find(']') {
                    Some(close) => j += close + 1,
                    None => break,
                }
            } else {
                break;
            }
        }
        if !clean_code[j..].starts_with("mod ") {
            continue;
        }
        let Some(open) = clean_code[j..].find('{').map(|p| p + j) else {
            continue;
        };
        let Some(close) = matching_brace(clean_code, open) else {
            continue;
        };
        for cell in out.iter_mut().take(close + 1).skip(at) {
            if *cell != b'\n' {
                *cell = b' ';
            }
        }
        from = close + 1;
    }
    String::from_utf8(out).expect("blanking preserves UTF-8")
}

/// Blank every `debug_assert…!(…)` invocation in already-cleaned code, so
/// the panic rule does not flag panics that only exist in debug builds'
/// assertion messages.
pub fn strip_debug_asserts(clean_code: &str) -> String {
    let mut out = clean_code.as_bytes().to_vec();
    let mut from = 0usize;
    while let Some(at) = clean_code[from..].find("debug_assert").map(|p| p + from) {
        // Must be token-initial (not `my_debug_assert`).
        let prev_ok = at == 0 || {
            let p = clean_code.as_bytes()[at - 1];
            !(p.is_ascii_alphanumeric() || p == b'_')
        };
        let Some(bang) = clean_code[at..].find('!').map(|p| p + at) else {
            break;
        };
        // Only a macro name may sit between `debug_assert` and `!`.
        let name_ok = clean_code[at..bang]
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_');
        if !(prev_ok && name_ok) {
            from = at + 1;
            continue;
        }
        // Match the delimiter right after the bang.
        let bytes = clean_code.as_bytes();
        let mut j = bang + 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let (open, close) = match bytes.get(j) {
            Some(b'(') => (b'(', b')'),
            Some(b'[') => (b'[', b']'),
            Some(b'{') => (b'{', b'}'),
            _ => {
                from = at + 1;
                continue;
            }
        };
        let mut depth = 0usize;
        let mut end = None;
        for (k, &b) in bytes.iter().enumerate().skip(j) {
            if b == open {
                depth += 1;
            } else if b == close {
                depth -= 1;
                if depth == 0 {
                    end = Some(k);
                    break;
                }
            }
        }
        let Some(end) = end else {
            break;
        };
        for cell in out.iter_mut().take(end + 1).skip(at) {
            if *cell != b'\n' {
                *cell = b' ';
            }
        }
        from = end + 1;
    }
    String::from_utf8(out).expect("blanking preserves UTF-8")
}

/// Is the token starting at `at` with length `len` a standalone word (not a
/// fragment of a larger identifier)?
pub fn is_word(code: &str, at: usize, len: usize) -> bool {
    let bytes = code.as_bytes();
    let before = at
        .checked_sub(1)
        .map(|p| bytes[p].is_ascii_alphanumeric() || bytes[p] == b'_')
        .unwrap_or(false);
    let after = bytes
        .get(at + len)
        .map(|&b| b.is_ascii_alphanumeric() || b == b'_')
        .unwrap_or(false);
    !before && !after
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked_but_lines_align() {
        let src = "let x = \"1e-9 // not code\"; // lint: allow-panic(reason)\nlet y = 1;\n";
        let clean = CleanSource::new(src);
        assert!(!clean.code.contains("1e-9"));
        assert!(!clean.code.contains("allow-panic"));
        assert_eq!(clean.code.lines().count(), src.lines().count());
        assert!(clean.comment_on(1).contains("lint: allow-panic(reason)"));
        assert!(clean.has_waiver(1, "lint: allow-panic("));
        assert!(clean.has_waiver(2, "lint: allow-panic(")); // line above
    }

    #[test]
    fn waiver_requires_a_reason() {
        let clean = CleanSource::new("foo(); // lint: no-cancel-poll()\n");
        assert!(!clean.has_waiver(1, "lint: no-cancel-poll("));
        let clean = CleanSource::new("foo(); // lint: no-cancel-poll(bounded)\n");
        assert!(clean.has_waiver(1, "lint: no-cancel-poll("));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_lifetimes_kept() {
        let src = "let s = r#\"panic!(\"x\")\"#; let c = '\\n'; fn f<'a>(x: &'a str) {}";
        let clean = CleanSource::new(src);
        assert!(!clean.code.contains("panic!"));
        assert!(clean.code.contains("<'a>"));
        assert_eq!(clean.code.len(), src.len());
    }

    #[test]
    fn nested_block_comments_end_correctly() {
        let src = "/* outer /* inner */ still comment */ let z = 1;";
        let clean = CleanSource::new(src);
        assert!(clean.code.contains("let z = 1;"));
        assert!(!clean.code.contains("outer"));
        assert!(!clean.code.contains("still"));
    }

    #[test]
    fn test_modules_are_stripped() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn tail() {}\n";
        let clean = CleanSource::new(src);
        let stripped = strip_test_modules(&clean.code);
        assert!(stripped.contains("fn lib() { x.unwrap(); }"));
        assert!(!stripped.contains("y.unwrap()"));
        assert!(stripped.contains("fn tail() {}"));
        assert_eq!(stripped.lines().count(), src.lines().count());
    }

    #[test]
    fn debug_asserts_are_stripped() {
        let src = "debug_assert!(a.unwrap() > 0, \"m\");\nb.unwrap();\n";
        let clean = CleanSource::new(src);
        let stripped = strip_debug_asserts(&clean.code);
        assert!(!stripped.contains("a.unwrap()"));
        assert!(stripped.contains("b.unwrap();"));
    }
}
