//! `qr-lint` — repo-specific static analysis for the query-refinement
//! workspace.
//!
//! Walks every workspace `.rs` file (excluding `vendor/` and `target/`;
//! `tools/` is covered — the server crate is library code with solve-path
//! loops) and enforces four invariants that the compiler cannot:
//!
//! 1. **tolerance** — no bare `1e-*` float literal outside `qr_milp::tol`,
//! 2. **cancel-poll** — every `loop`/`while` on the solve path polls its
//!    stop condition,
//! 3. **panic** — no `unwrap`/`expect`/`panic!` family in library code
//!    outside tests and `debug_assert!`s,
//! 4. **crate-attrs** — every crate root carries `#![forbid(unsafe_code)]`
//!    and `#![deny(missing_docs)]`.
//!
//! Usage: `cargo run -p qr-lint -- [--deny] [--root <dir>]`. With `--deny`
//! (the CI mode) any violation exits nonzero; without it violations are
//! printed as warnings. See `rules.rs` for waiver syntax.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod rules;
mod scan;

use rules::{lint_file, Violation};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories never descended into, anywhere in the tree.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git"];

fn main() -> ExitCode {
    let mut deny = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("qr-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("qr-lint: unknown argument `{other}` (expected --deny / --root <dir>)");
                return ExitCode::from(2);
            }
        }
    }

    let violations = match lint_workspace(&root) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("qr-lint: {err}");
            return ExitCode::from(2);
        }
    };
    let severity = if deny { "error" } else { "warning" };
    for v in &violations {
        println!("{severity}: {v}");
    }
    if violations.is_empty() {
        println!("qr-lint: workspace clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "qr-lint: {} violation{} found",
            violations.len(),
            if violations.len() == 1 { "" } else { "s" }
        );
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

/// Lint every `.rs` file under `root`, returning violations sorted by path
/// and line.
fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut violations = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(&file)?;
        violations.extend(lint_file(&rel, &source));
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The gate's own gate: the real workspace must be clean. If this fails,
    /// either a violation slipped in without a waiver or a rule rotted —
    /// both are exactly what the lint exists to catch.
    #[test]
    fn real_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
        let violations = lint_workspace(&root).expect("workspace sources are readable");
        assert!(
            violations.is_empty(),
            "workspace has lint violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Each rule must actually fire on a seeded violation (acceptance
    /// criterion: the gate fails on a bad workspace, not just passes on a
    /// good one).
    #[test]
    fn seeded_violations_fail_each_rule() {
        let cases: &[(&str, &str, &str)] = &[
            (
                "crates/milp/src/simplex.rs",
                "fn f() -> f64 { 1e-7 }\n",
                "tolerance",
            ),
            (
                "crates/milp/src/dual.rs",
                "fn f() { loop { spin(); } }\n",
                "cancel-poll",
            ),
            (
                "crates/core/src/session.rs",
                "fn f() { x.unwrap(); }\n",
                "panic",
            ),
            (
                "crates/core/src/lib.rs",
                "#![warn(missing_docs)]\n",
                "crate-attrs",
            ),
        ];
        for (path, source, rule) in cases {
            let violations = lint_file(path, source);
            assert!(
                violations.iter().any(|v| v.rule == *rule),
                "seeded {rule} violation in {path} was not caught"
            );
        }
    }
}
