//! The four workspace invariants, each implemented as a scan over cleaned
//! source (see [`crate::scan`]) scoped by repo-relative path.
//!
//! | rule | invariant | waiver |
//! |------|-----------|--------|
//! | `tolerance`   | no bare `1e-*` float literal outside `qr_milp::tol` | — (move the constant) |
//! | `cancel-poll` | every `loop`/`while` on the solve path polls its stop condition | `// lint: no-cancel-poll(<reason>)` |
//! | `panic`       | no `unwrap`/`expect`/`panic!` family in library code | `// lint: allow-panic(<reason>)` |
//! | `crate-attrs` | every crate root forbids unsafe code and denies missing docs | — (add the attributes) |
//!
//! Waivers go in a comment on the offending line or the line directly above
//! and must state a reason inside the parentheses.

use crate::scan::{
    is_word, line_of, matching_brace, strip_debug_asserts, strip_test_modules, CleanSource,
};

/// One reported invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule identifier (`tolerance`, `cancel-poll`, `panic`, `crate-attrs`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Files on the cancellable solve path: every `loop`/`while` here must poll
/// the stop condition (`should_stop` / `is_cancelled`) or carry a
/// `// lint: no-cancel-poll(<reason>)` waiver.
const SOLVE_PATH_FILES: &[&str] = &[
    "crates/milp/src/simplex.rs",
    "crates/milp/src/dual.rs",
    "crates/milp/src/branch_bound.rs",
    // Checkpoint capture/restore runs inside the interrupted solve's
    // control scope: a loop here outlives the very budget that tripped.
    "crates/milp/src/resume.rs",
    "crates/core/src/naive.rs",
    "crates/core/src/erica.rs",
    // The cache sits inside every cache-enabled solve; the portfolio's
    // watcher loop is the only thing standing between a caller's deadline
    // and a race of entrants that would otherwise run to completion.
    "crates/core/src/cache.rs",
    "crates/core/src/portfolio.rs",
    // The server's accept/connection/worker loops sit upstream of every
    // solve: a loop here that never polls shutdown would turn graceful
    // drain into a hang.
    "tools/qr-server/src/server.rs",
    // Token storage is touched by every worker under drain; the retrying
    // client promises prompt teardown via its own should_stop hook.
    "tools/qr-server/src/resume.rs",
    "tools/qr-server/src/client.rs",
];

/// Library crates subject to the panic rule. `crates/bench` is deliberately
/// absent: it is a benchmark/experiment harness whose binaries may panic on
/// bad CLI input.
const LIBRARY_SRC_PREFIXES: &[&str] = &[
    "crates/relation/src/",
    "crates/milp/src/",
    "crates/provenance/src/",
    "crates/core/src/",
    "crates/datagen/src/",
    // The server promises a closed wire-level error taxonomy ("never a raw
    // panic across the socket"), so its sources are held to the same
    // no-panic discipline as the libraries.
    "tools/qr-server/src/",
    "src/",
];

/// Crate roots that must carry `#![forbid(unsafe_code)]` and
/// `#![deny(missing_docs)]`.
const CRATE_ROOTS: &[&str] = &[
    "crates/relation/src/lib.rs",
    "crates/milp/src/lib.rs",
    "crates/provenance/src/lib.rs",
    "crates/core/src/lib.rs",
    "crates/datagen/src/lib.rs",
    "crates/bench/src/lib.rs",
    "tools/qr-server/src/lib.rs",
    "src/lib.rs",
];

/// Lint one file. `rel_path` is the repo-relative path with forward slashes;
/// `source` is the file's text.
pub fn lint_file(rel_path: &str, source: &str) -> Vec<Violation> {
    let clean = CleanSource::new(source);
    let mut out = Vec::new();
    check_tolerance(rel_path, &clean, &mut out);
    check_cancel_polls(rel_path, &clean, &mut out);
    check_panics(rel_path, &clean, &mut out);
    check_crate_attrs(rel_path, source, &mut out);
    out
}

fn in_library_src(rel_path: &str) -> bool {
    LIBRARY_SRC_PREFIXES.iter().any(|p| rel_path.starts_with(p))
}

// --- Rule 1: tolerance discipline -----------------------------------------

/// Scan for bare float literals with a negative exponent (`1e-7`, `2.5E-3`).
/// Inside `crates/milp/src` the rule covers *all* code, tests included —
/// every tolerance the solver is tested against must be a named constant
/// from `qr_milp::tol` (the sole exemption). Elsewhere in library sources it
/// covers non-test code.
fn check_tolerance(rel_path: &str, clean: &CleanSource, out: &mut Vec<Violation>) {
    let in_milp = rel_path.starts_with("crates/milp/src/");
    if rel_path == "crates/milp/src/tol.rs" {
        return;
    }
    if !in_milp {
        // Outside qr-milp: only library crates' non-test code; crates/bench
        // is covered too (experiment configs should use named tolerances).
        let covered = in_library_src(rel_path) || rel_path.starts_with("crates/bench/src/");
        if !covered {
            return;
        }
    }
    let code = if in_milp {
        clean.code.clone()
    } else {
        strip_test_modules(&clean.code)
    };
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'e' && b != b'E' {
            continue;
        }
        if bytes.get(i + 1) != Some(&b'-') || !bytes.get(i + 2).is_some_and(u8::is_ascii_digit) {
            continue;
        }
        // Walk back over the mantissa: digits, optionally one dot.
        let mut j = i;
        let mut saw_digit = false;
        while j > 0 {
            let p = bytes[j - 1];
            if p.is_ascii_digit() {
                saw_digit = true;
                j -= 1;
            } else if p == b'.' {
                j -= 1;
            } else {
                break;
            }
        }
        // A literal, not an identifier tail like `row_1e-2` (identifier char
        // before the mantissa) or a member access like `x.1e-…`.
        let ident_before = j > 0 && {
            let p = bytes[j - 1];
            p.is_ascii_alphanumeric() || p == b'_' || p == b'.'
        };
        if saw_digit && !ident_before {
            out.push(Violation {
                file: rel_path.to_string(),
                line: line_of(&code, i),
                rule: "tolerance",
                message: format!(
                    "bare float-tolerance literal `{}`; use a named constant from qr_milp::tol",
                    literal_at(&code, j)
                ),
            });
        }
    }
}

/// The numeric literal starting at `from` (for the report message).
fn literal_at(code: &str, from: usize) -> &str {
    let bytes = code.as_bytes();
    let mut end = from;
    while end < bytes.len()
        && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'.' || bytes[end] == b'-')
    {
        end += 1;
        // Stop the `-` greed after the exponent sign.
        if end >= from + 2 && bytes[end - 1] == b'-' && !bytes[end - 2].eq_ignore_ascii_case(&b'e')
        {
            end -= 1;
            break;
        }
    }
    &code[from..end]
}

// --- Rule 2: cancellation completeness ------------------------------------

/// Every `loop` / `while` body in a solve-path file must contain a
/// cooperative stop poll (`should_stop` or `is_cancelled`) — directly or in
/// a nested loop — or carry a `// lint: no-cancel-poll(<reason>)` waiver.
fn check_cancel_polls(rel_path: &str, clean: &CleanSource, out: &mut Vec<Violation>) {
    if !SOLVE_PATH_FILES.contains(&rel_path) {
        return;
    }
    let code = strip_test_modules(&clean.code);
    let bytes = code.as_bytes();
    for keyword in ["loop", "while"] {
        let mut from = 0usize;
        while let Some(at) = code[from..].find(keyword).map(|p| p + from) {
            from = at + keyword.len();
            if !is_word(&code, at, keyword.len()) {
                continue;
            }
            // Find the body `{`: the first brace outside the condition's
            // parens/brackets (`while` conditions cannot contain bare struct
            // literals, so the first such brace is the body).
            let mut depth = 0i32;
            let mut open = None;
            for (k, &b) in bytes.iter().enumerate().skip(at + keyword.len()) {
                match b {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'{' if depth == 0 => {
                        open = Some(k);
                        break;
                    }
                    b';' if depth == 0 => break, // `while` used as identifier? bail
                    _ => {}
                }
            }
            let Some(open) = open else { continue };
            let Some(close) = matching_brace(&code, open) else {
                continue;
            };
            let body = &code[open..=close];
            let line = line_of(&code, at);
            let polled = body.contains("should_stop") || body.contains("is_cancelled");
            if !polled && !clean.has_waiver(line, "lint: no-cancel-poll(") {
                out.push(Violation {
                    file: rel_path.to_string(),
                    line,
                    rule: "cancel-poll",
                    message: format!(
                        "`{keyword}` on the solve path never polls its stop condition \
                         (add a should_stop/is_cancelled poll or a \
                         `// lint: no-cancel-poll(<reason>)` waiver)"
                    ),
                });
            }
        }
    }
}

// --- Rule 3: panic discipline ----------------------------------------------

const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// No panicking calls in library code outside tests and `debug_assert!`s,
/// unless the site carries `// lint: allow-panic(<reason>)`.
fn check_panics(rel_path: &str, clean: &CleanSource, out: &mut Vec<Violation>) {
    if !in_library_src(rel_path) {
        return;
    }
    let code = strip_debug_asserts(&strip_test_modules(&clean.code));
    let bytes = code.as_bytes();
    let mut flag = |at: usize, what: &str| {
        let line = line_of(&code, at);
        if !clean.has_waiver(line, "lint: allow-panic(") {
            out.push(Violation {
                file: rel_path.to_string(),
                line,
                rule: "panic",
                message: format!(
                    "`{what}` in library code (return an error, or waive with \
                     `// lint: allow-panic(<reason>)`)"
                ),
            });
        }
    };
    for method in PANIC_METHODS {
        let needle = format!(".{method}(");
        let mut from = 0usize;
        while let Some(at) = code[from..].find(&needle).map(|p| p + from) {
            from = at + needle.len();
            flag(at, &format!("{method}()"));
        }
    }
    for mac in PANIC_MACROS {
        let needle = format!("{mac}!");
        let mut from = 0usize;
        while let Some(at) = code[from..].find(&needle).map(|p| p + from) {
            from = at + needle.len();
            if !is_word(&code, at, mac.len()) {
                continue;
            }
            // `panic!` inside `#[should_panic…]`-style attributes cannot
            // appear in cleaned non-test code; no further filtering needed.
            let _ = bytes;
            flag(at, &needle);
        }
    }
}

// --- Rule 4: crate attributes ----------------------------------------------

/// Crate roots must carry `#![forbid(unsafe_code)]` and
/// `#![deny(missing_docs)]` (checked on raw source: attributes are code, but
/// keep the check independent of the scanner).
fn check_crate_attrs(rel_path: &str, source: &str, out: &mut Vec<Violation>) {
    if !CRATE_ROOTS.contains(&rel_path) {
        return;
    }
    for attr in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
        if !source.contains(attr) {
            out.push(Violation {
                file: rel_path.to_string(),
                line: 1,
                rule: "crate-attrs",
                message: format!("crate root is missing `{attr}`"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    // --- tolerance ---

    #[test]
    fn tolerance_flags_bare_literal_in_milp() {
        let v = lint_file(
            "crates/milp/src/simplex.rs",
            "fn f() -> f64 { 1e-7 + 2.5E-3 }\n",
        );
        assert_eq!(rules_of(&v), vec!["tolerance", "tolerance"]);
        assert!(v[0].message.contains("1e-7"));
    }

    #[test]
    fn tolerance_flags_milp_test_code_too() {
        let v = lint_file(
            "crates/milp/src/lu.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { assert!(x < 1e-10); }\n}\n",
        );
        assert_eq!(rules_of(&v), vec!["tolerance"]);
    }

    #[test]
    fn tolerance_exempts_tol_module_and_non_milp_tests() {
        assert!(lint_file("crates/milp/src/tol.rs", "pub const T: f64 = 1e-7;\n").is_empty());
        let v = lint_file(
            "crates/core/src/distance.rs",
            "#[cfg(test)]\nmod tests {\n    fn t() { assert!(d < 1e-9); }\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn tolerance_flags_non_test_core_code() {
        let v = lint_file(
            "crates/core/src/naive.rs",
            "fn f(x: f64) -> bool { x < 1e-9 }\n",
        );
        assert_eq!(rules_of(&v), vec!["tolerance"]);
    }

    #[test]
    fn tolerance_ignores_positive_exponents_comments_and_strings() {
        let src = "// 1e-9 in prose\nfn f() -> f64 { 1e8 + format_units(\"1e-3\").len() as f64 }\n";
        assert!(lint_file("crates/milp/src/factor.rs", src).is_empty());
    }

    // --- cancel-poll ---

    #[test]
    fn cancel_poll_flags_unpolled_loop() {
        let v = lint_file(
            "crates/milp/src/simplex.rs",
            "fn f() { loop { work(); } }\n",
        );
        assert_eq!(rules_of(&v), vec!["cancel-poll"]);
    }

    #[test]
    fn cancel_poll_accepts_polls_and_waivers() {
        let polled = "fn f(stop: &S) { while x() { if stop.should_stop() { break; } } }\n";
        assert!(lint_file("crates/milp/src/dual.rs", polled).is_empty());
        let nested = "fn f(c: &C) { loop { for i in 0..9 { if c.is_cancelled() { return; } } } }\n";
        assert!(lint_file("crates/milp/src/branch_bound.rs", nested).is_empty());
        let waived =
            "fn f() {\n    // lint: no-cancel-poll(bounded by n)\n    while n > 0 { n -= 1; }\n}\n";
        assert!(lint_file("crates/core/src/naive.rs", waived).is_empty());
    }

    #[test]
    fn cancel_poll_only_applies_to_solve_path_files() {
        let src = "fn f() { loop { work(); } }\n";
        assert!(lint_file("crates/core/src/session.rs", src)
            .iter()
            .all(|v| v.rule != "cancel-poll"));
    }

    #[test]
    fn cancel_poll_waiver_requires_reason() {
        let src = "fn f() {\n    // lint: no-cancel-poll()\n    loop { work(); }\n}\n";
        assert_eq!(
            rules_of(&lint_file("crates/core/src/erica.rs", src)),
            vec!["cancel-poll"]
        );
    }

    // --- panic ---

    #[test]
    fn panic_flags_unwrap_expect_and_macros() {
        let v = lint_file(
            "crates/core/src/session.rs",
            "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); unreachable!(); }\n",
        );
        assert_eq!(rules_of(&v), vec!["panic"; 4]);
    }

    #[test]
    fn panic_accepts_waivers_tests_and_debug_asserts() {
        let waived = "fn f() {\n    // lint: allow-panic(held invariant: non-empty by construction)\n    x.unwrap();\n}\n";
        assert!(lint_file("crates/relation/src/predicate.rs", waived).is_empty());
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_file("crates/provenance/src/annotate.rs", test_only).is_empty());
        let dbg = "fn f() { debug_assert!(x.unwrap() > 0); }\n";
        assert!(lint_file("crates/milp/src/factor.rs", dbg).is_empty());
    }

    #[test]
    fn panic_rule_skips_bench_harness() {
        let src = "fn main() { run().unwrap(); }\n";
        assert!(lint_file("crates/bench/src/bin/experiments.rs", src).is_empty());
    }

    #[test]
    fn panic_ignores_non_panicking_lookalikes() {
        let src = "fn f() { x.unwrap_or_else(g); y.unwrap_or(0); my_panic!(); }\n";
        assert!(lint_file("crates/core/src/solver.rs", src).is_empty());
    }

    #[test]
    fn cancel_poll_covers_the_resume_path() {
        // The checkpoint/restore files are solve-path: an unpolled loop in
        // any of them is a violation...
        for file in [
            "crates/milp/src/resume.rs",
            "tools/qr-server/src/resume.rs",
            "tools/qr-server/src/client.rs",
        ] {
            let v = lint_file(file, "fn f() { loop { restore(); } }\n");
            assert_eq!(rules_of(&v), vec!["cancel-poll"], "{file}");
        }
        // ...and a polled one is not.
        let polled = "fn f(s: &S) { loop { if s.should_stop() { return; } restore(); } }\n";
        assert!(lint_file("tools/qr-server/src/client.rs", polled).is_empty());
    }

    #[test]
    fn cancel_poll_covers_the_cache_and_portfolio_path() {
        // The solution cache and the portfolio racer are solve-path: an
        // unpolled loop in either is a violation...
        for file in ["crates/core/src/cache.rs", "crates/core/src/portfolio.rs"] {
            let v = lint_file(file, "fn f() { loop { evict(); } }\n");
            assert_eq!(rules_of(&v), vec!["cancel-poll"], "{file}");
        }
        // ...and the watcher's mirror loop, which polls the caller's stop
        // condition, is not.
        let polled =
            "fn f(s: &S, t: &T) { while running() { if s.should_stop() { t.cancel(); return; } } }\n";
        assert!(lint_file("crates/core/src/portfolio.rs", polled).is_empty());
    }

    #[test]
    fn panic_rule_covers_the_resume_path() {
        // The resume table and retrying client live behind the server's
        // "never a raw panic across the socket" promise.
        let v = lint_file(
            "tools/qr-server/src/resume.rs",
            "fn f() { table.get(t).unwrap(); }\n",
        );
        assert_eq!(rules_of(&v), vec!["panic"]);
        let v = lint_file(
            "crates/milp/src/resume.rs",
            "fn f() { frontier.pop().expect(\"non-empty\"); }\n",
        );
        assert_eq!(rules_of(&v), vec!["panic"]);
    }

    // --- server-crate coverage ---

    #[test]
    fn server_crate_is_held_to_every_scoped_rule() {
        // Accept/worker loops are solve-path: they must poll shutdown.
        let v = lint_file(
            "tools/qr-server/src/server.rs",
            "fn f() { loop { accept(); } }\n",
        );
        assert_eq!(rules_of(&v), vec!["cancel-poll"]);
        let polled = "fn f(s: &S) { loop { if s.should_stop() { break; } accept(); } }\n";
        assert!(lint_file("tools/qr-server/src/server.rs", polled).is_empty());
        // The no-raw-panic-across-the-socket promise: panic discipline.
        let v = lint_file("tools/qr-server/src/json.rs", "fn f() { x.unwrap(); }\n");
        assert_eq!(rules_of(&v), vec!["panic"]);
        // Tolerance discipline covers the server like any library crate.
        let v = lint_file(
            "tools/qr-server/src/protocol.rs",
            "fn f(x: f64) -> bool { x < 1e-9 }\n",
        );
        assert_eq!(rules_of(&v), vec!["tolerance"]);
        // Crate-root attributes.
        let v = lint_file("tools/qr-server/src/lib.rs", "#![warn(missing_docs)]\n");
        assert_eq!(rules_of(&v), vec!["crate-attrs", "crate-attrs"]);
        // qr-lint's own sources remain outside every scoped rule.
        assert!(lint_file(
            "tools/qr-lint/src/main.rs",
            "fn f() { x.unwrap(); loop { spin(); } }\n"
        )
        .is_empty());
    }

    // --- crate-attrs ---

    #[test]
    fn crate_attrs_flags_missing_attributes() {
        let v = lint_file("crates/milp/src/lib.rs", "#![warn(missing_docs)]\n");
        assert_eq!(rules_of(&v), vec!["crate-attrs", "crate-attrs"]);
        let ok = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n";
        assert!(lint_file("crates/milp/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn crate_attrs_only_applies_to_crate_roots() {
        assert!(lint_file("crates/milp/src/simplex.rs", "fn f() {}\n")
            .iter()
            .all(|v| v.rule != "crate-attrs"));
    }
}
