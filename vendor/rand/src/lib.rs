//! Offline shim for the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment has no access to a crate registry, so this crate
//! stands in for the real `rand`. It implements a deterministic
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator behind the
//! same names the workspace imports (`rand::rngs::StdRng`, `rand::Rng`,
//! `rand::SeedableRng`). Streams are reproducible for a given seed but are
//! **not** identical to the real `rand`'s ChaCha-based `StdRng`, and the shim
//! is not cryptographically secure — it exists to make seeded synthetic data
//! generation work, nothing more. Swap the `vendor/rand` path dependency for
//! `rand = "0.8"` when a registry is reachable.

#![warn(missing_docs)]

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic 64-bit generator (SplitMix64) standing in for the real
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

impl StdRng {
    #[inline]
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)` using the high 53 bits.
    #[inline]
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix the seed once so small seeds don't start in a low-entropy
        // region of the SplitMix64 sequence.
        let mut rng = StdRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        };
        let _ = rng.next_u64();
        rng
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`], mirroring the real
/// crate's `Standard` distribution.
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_f64() as f32
    }
}

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over a range, mirroring
/// `rand::distributions::uniform::SampleUniform`. The blanket
/// [`SampleRange`] impls below rely on this so numeric-literal type fallback
/// works in calls like `rng.gen_range(-8.0..12.0)`.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open(start: Self, end: Self, rng: &mut StdRng) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_inclusive(start: Self, end: Self, rng: &mut StdRng) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(start: Self, end: Self, rng: &mut StdRng) -> Self {
                assert!(start < end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }

            fn sample_inclusive(start: Self, end: Self, rng: &mut StdRng) -> Self {
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(start: Self, end: Self, rng: &mut StdRng) -> Self {
                assert!(start < end, "gen_range: empty range");
                start + (rng.next_f64() as $t) * (end - start)
            }

            fn sample_inclusive(start: Self, end: Self, rng: &mut StdRng) -> Self {
                assert!(start <= end, "gen_range: empty range");
                start + (rng.next_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from(self, rng: &mut StdRng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut StdRng) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The user-facing generator trait, mirroring `rand::Rng`.
pub trait Rng {
    /// Draw a uniform value of type `T` (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T;

    /// Draw a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(0..17);
            assert!(x < 17);
            let y: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z: f64 = rng.gen_range(-0.3..0.3);
            assert!((-0.3..0.3).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
