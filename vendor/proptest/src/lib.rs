//! Offline shim for the `proptest` 1.x API surface used by this workspace.
//!
//! The build environment has no access to a crate registry, so this crate
//! stands in for the real proptest. It implements the subset the workspace's
//! property tests use: the [`proptest!`] macro (with `#![proptest_config]`),
//! range / tuple / `&str`-pattern strategies, [`collection::vec`] and
//! [`collection::btree_set`], `prop_oneof!`, `prop_map`, `any::<T>()`, and
//! the `prop_assume!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed (derived from the test name), failing inputs are
//! reported but **not shrunk**, and `&str` strategies support only the
//! `[class]{lo,hi}` pattern shape (anything else is treated as a literal
//! string). Swap the `vendor/proptest` path dependency for `proptest = "1"`
//! when a registry is reachable.

#![warn(missing_docs)]

/// Deterministic random source handed to strategies.
pub mod test_runner {
    /// SplitMix64 generator driving all case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Create a generator from a 64-bit seed.
        pub fn new(seed: u64) -> Self {
            let mut rng = TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            };
            let _ = rng.next_u64();
            rng
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below: bound must be positive");
            self.next_u64() % bound
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases each test must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` accepted cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; try another case.
        Reject,
        /// A `prop_assert*!` failed; abort the test.
        Fail(String),
    }

    /// Drive one property test: generate cases until `config.cases` are
    /// accepted, panicking on the first failure with the offending inputs.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        // Seed from the test name so every test gets an independent but
        // reproducible stream.
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        let mut rng = TestRng::new(seed);
        let mut accepted = 0u32;
        let mut attempts = 0u64;
        let max_attempts = config.cases as u64 * 64;
        while accepted < config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "proptest '{name}': too many rejected cases ({accepted}/{} accepted after {attempts} attempts)",
                config.cases
            );
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed: {msg}\n  inputs: {inputs}")
                }
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between same-typed strategies (`prop_oneof!`).
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Choose uniformly among `options`.
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy: empty range");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// `&str` strategies: `[class]{lo,hi}` generates strings over the class,
    /// anything else is a literal.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_pattern(self) {
                Some((chars, lo, hi)) => {
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    (0..len)
                        .map(|_| chars[rng.below(chars.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parse a `[class]{lo,hi}` pattern into (alphabet, lo, hi).
    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                for c in a..=b {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        Some((chars, lo, hi))
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4)
    );

    /// Values with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<T>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi_exclusive: usize,
    }

    /// Generate vectors whose length lies in `size` (half-open, like the real
    /// crate's `Range<usize>` form).
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy {
            element,
            lo: size.start,
            hi_exclusive: size.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with target size drawn from a range
    /// (duplicates may make the set smaller, as in the real crate).
    pub struct BTreeSetStrategy<S> {
        element: S,
        lo: usize,
        hi_exclusive: usize,
    }

    /// Generate B-tree sets whose target size lies in `size`.
    pub fn btree_set<S>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(
            size.start < size.end,
            "collection::btree_set: empty size range"
        );
        BTreeSetStrategy {
            element,
            lo: size.start,
            hi_exclusive: size.end,
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize;
            let mut set = BTreeSet::new();
            // Bounded attempts: duplicates may keep the set under target.
            for _ in 0..target * 4 {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice among strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($option),+])
    };
}

/// Filter the current case: if the condition is false the case is rejected
/// and regenerated.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Assert within a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Assert equality within a property; failure reports both sides and the
/// generated inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...)` runs the body
/// against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run(&config, stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                (inputs, outcome)
            });
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5, z in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&z));
        }

        #[test]
        fn assume_rejects(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn collections_and_patterns(
            v in crate::collection::vec(0u8..4, 1..6),
            s in crate::collection::btree_set(prop_oneof!["a", "b", "c"].prop_map(String::from), 0..3),
            text in "[a-z ,]{0,12}",
        ) {
            prop_assert!((1..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
            prop_assert!(s.len() < 3);
            prop_assert!(text.len() <= 12);
            prop_assert!(text.chars().all(|c| c.is_ascii_lowercase() || c == ' ' || c == ','));
        }

        #[test]
        fn tuples_and_any(pair in (0i64..100, -10.0f64..10.0), flag in any::<bool>()) {
            prop_assert!((0..100).contains(&pair.0));
            prop_assert!((-10.0..10.0).contains(&pair.1));
            let _ = flag;
        }
    }

    #[test]
    fn run_the_properties() {
        ranges_stay_in_bounds();
        assume_rejects();
        collections_and_patterns();
        tuples_and_any();
    }
}
