//! Offline shim for the `criterion` 0.5 API surface used by this workspace.
//!
//! The build environment has no access to a crate registry, so this crate
//! stands in for the real Criterion. It implements the subset the `qr-bench`
//! targets use — `Criterion::benchmark_group`, group configuration
//! (`sample_size` / `measurement_time` / `warm_up_time`), `bench_function`,
//! `Bencher::iter` and the `criterion_group!` / `criterion_main!` macros —
//! with a simple wall-clock mean/min/max report instead of Criterion's
//! statistical analysis. Swap the `vendor/criterion` path dependency for
//! `criterion = "0.5"` when a registry is reachable.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the optimiser from discarding a value, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each bench function, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    quick: bool,
    baseline: Option<std::path::PathBuf>,
}

impl Criterion {
    /// Parse command-line arguments (`--quick` shrinks every budget;
    /// `--save-baseline NAME` appends every measurement to
    /// `target/criterion/NAME.tsv`, mirroring real Criterion's baseline
    /// artifacts in a CI-uploadable form; other Cargo-forwarded flags such as
    /// `--bench` are accepted and ignored).
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().collect();
        self.quick = args.iter().any(|a| a == "--quick");
        if let Some(pos) = args.iter().position(|a| a == "--save-baseline") {
            if let Some(name) = args.get(pos + 1) {
                let dir = target_dir().join("criterion");
                let path = dir.join(format!("{name}.tsv"));
                // Truncate up front: a re-run *replaces* the named baseline
                // (as real Criterion does), while measurements within the run
                // append to it.
                let created = std::fs::create_dir_all(&dir)
                    .and_then(|()| std::fs::File::create(&path).map(drop));
                match created {
                    Ok(()) => self.baseline = Some(path),
                    Err(err) => {
                        eprintln!("criterion shim: cannot create {}: {err}", path.display())
                    }
                }
            }
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmarking group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }

    fn record_baseline(
        &self,
        group: &str,
        id: &str,
        samples: usize,
        mean: f64,
        min: f64,
        max: f64,
    ) {
        let Some(path) = &self.baseline else {
            return;
        };
        use std::io::Write as _;
        let line = format!("{group}\t{id}\t{samples}\t{mean:.9}\t{min:.9}\t{max:.9}\n");
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(err) = result {
            eprintln!("criterion shim: cannot write {}: {err}", path.display());
        }
    }

    fn is_quick(&self) -> bool {
        self.quick
    }
}

/// A group of benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Set the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up time budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Measure one closure and print a one-line report.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let (samples, measurement, warm_up) = if self._criterion.is_quick() {
            (
                self.sample_size.min(10),
                Duration::from_millis(200),
                Duration::from_millis(50),
            )
        } else {
            (self.sample_size, self.measurement_time, self.warm_up_time)
        };

        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < warm_up {
            f(&mut bencher);
        }

        // Measurement: run until we have the requested samples or the time
        // budget is exhausted (always at least one sample).
        bencher.elapsed = Duration::ZERO;
        bencher.iterations = 0;
        let mut times = Vec::with_capacity(samples);
        let measure_start = Instant::now();
        while times.len() < samples {
            let before = (bencher.elapsed, bencher.iterations);
            f(&mut bencher);
            let iters = bencher.iterations - before.1;
            if iters > 0 {
                times.push((bencher.elapsed - before.0).as_secs_f64() / iters as f64);
            }
            if measure_start.elapsed() > measurement && !times.is_empty() {
                break;
            }
        }

        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{}/{id}: {} samples, mean {}, min {}, max {}",
            self.name,
            times.len(),
            fmt_seconds(mean),
            fmt_seconds(min),
            fmt_seconds(max),
        );
        self._criterion
            .record_baseline(&self.name, &id, times.len(), mean, min, max);
        self
    }

    /// Finish the group (report separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The Cargo target directory: `$CARGO_TARGET_DIR` when set, else the
/// `target` ancestor of the running bench executable (benches run with the
/// *package* root as cwd, so a relative `target/` would miss the workspace's).
fn target_dir() -> std::path::PathBuf {
    if let Some(dir) = std::env::var_os("CARGO_TARGET_DIR") {
        return std::path::PathBuf::from(dir);
    }
    if let Ok(exe) = std::env::current_exe() {
        for ancestor in exe.ancestors() {
            if ancestor.file_name().is_some_and(|n| n == "target") {
                return ancestor.to_path_buf();
            }
        }
    }
    std::path::PathBuf::from("target")
}

fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Timing helper handed to `bench_function` closures, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time one execution of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        black_box(out);
    }
}

/// Declare a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut runs = 0u64;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 5);
    }
}
