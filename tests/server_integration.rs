//! End-to-end tests of the networked refinement service over real TCP
//! sockets: concurrent clients, fault injection (mid-solve disconnects,
//! overload bursts, byte-dribbling slow clients, malformed and oversized
//! requests), graceful degradation under deadlines, the metrics endpoint,
//! and drain-on-shutdown.
//!
//! Each test starts its own in-process server on an ephemeral port with a
//! config tuned for the scenario. Time bounds are deliberately generous:
//! CI runs this on a single hardware thread.

use qr_server::{start, Json, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A line-protocol test client.
struct Client {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        Client {
            stream,
            carry: Vec::new(),
        }
    }

    fn send(&mut self, line: &str) {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
    }

    /// Read one response line (panics on timeout/EOF — tests always expect
    /// a response when they call this).
    fn recv(&mut self) -> Json {
        let raw = self.try_recv().expect("a response line");
        Json::parse(&raw).unwrap_or_else(|e| panic!("bad response {raw:?}: {e}"))
    }

    /// Read one response line, or `None` on EOF.
    fn try_recv(&mut self) -> Option<String> {
        loop {
            if let Some(nl) = self.carry.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.carry.drain(..=nl).collect();
                return Some(String::from_utf8_lossy(&line[..nl]).into_owned());
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.carry.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("recv: {e}"),
            }
        }
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn scrape_metrics(addr: SocketAddr) -> Json {
    Client::connect(addr).roundtrip(r#"{"op":"metrics"}"#)
}

fn counter(metrics: &Json, name: &str) -> u64 {
    metrics
        .get("server")
        .and_then(|s| s.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("counter {name} missing in {}", metrics.render()))
}

/// Poll the metrics endpoint until `pred` holds (true) or `limit` passes
/// (false).
fn wait_for(addr: SocketAddr, limit: Duration, pred: impl Fn(&Json) -> bool) -> bool {
    let deadline = Instant::now() + limit;
    while Instant::now() < deadline {
        if pred(&scrape_metrics(addr)) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

/// A solve that runs far longer than any cancellation latency being
/// measured against it: the Jaccard distance over the astronauts workload
/// at k=25 is a real MILP search that runs to the solve ceiling (90s+)
/// if nothing stops it.
const LONG_SOLVE: &str = r#"{"op":"solve","id":"long","dataset":"astronauts","epsilon":0.25,"distance":"JAC","constraints":[{"attribute":"Gender","value":"F","k":25,"n":13}]}"#;

/// A small solve over the paper's 8-tuple example database: milliseconds.
const QUICK_SOLVE: &str = r#"{"op":"solve","id":"quick","dataset":"paper","epsilon":0.5,"deadline_ms":30000,"constraints":[{"attribute":"Gender","value":"F","k":6,"n":3}]}"#;

#[test]
fn ping_solve_and_metrics_over_a_real_socket() {
    let server = start(ServerConfig::default()).expect("bind");
    let addr = server.addr();

    let mut client = Client::connect(addr);
    let pong = client.roundtrip(r#"{"op":"ping","id":1}"#);
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(pong.get("id").and_then(Json::as_u64), Some(1));

    // The paper's worked example end to end, on the same connection.
    let solved = client.roundtrip(QUICK_SOLVE);
    assert_eq!(solved.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(solved.get("id").and_then(Json::as_str), Some("quick"));
    assert_eq!(
        solved.get("outcome").and_then(Json::as_str),
        Some("refined")
    );
    let refined = solved.get("refined").expect("refined payload");
    assert!(refined.get("sql").and_then(Json::as_str).is_some());
    assert!(refined.get("deviation").and_then(Json::as_f64).is_some());
    let stats = solved.get("stats").expect("stats payload");
    assert!(stats.get("total_ms").and_then(Json::as_f64).is_some());

    let metrics = scrape_metrics(addr);
    assert_eq!(counter(&metrics, "completed"), 1);
    assert_eq!(counter(&metrics, "shed"), 0);
    let solver = metrics.get("solver").expect("solver aggregate");
    assert_eq!(solver.get("solves").and_then(Json::as_u64), Some(1));
    assert!(solver.get("nodes").and_then(Json::as_u64).is_some());
    let pool = metrics.get("pool").expect("pool block");
    assert_eq!(
        pool.get("resident_sessions").and_then(Json::as_u64),
        Some(1)
    );

    server.join();
}

/// Fault scenario (a): a client that vanishes mid-solve has its solve
/// cancelled promptly instead of holding the worker for the full search.
#[test]
fn mid_solve_disconnect_cancels_promptly() {
    let server = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let started = Instant::now();
    let mut doomed = Client::connect(addr);
    doomed.send(LONG_SOLVE);
    // Let admission + session fetch begin, then vanish without reading.
    assert!(
        wait_for(addr, Duration::from_secs(30), |m| {
            counter(m, "accepted") >= 1
        }),
        "solve was never admitted"
    );
    drop(doomed);

    // The disconnect poll trips the token and the solver's cancellation
    // polls stop the search — long before the full astronauts search (or
    // the 120s solve ceiling) would have finished.
    assert!(
        wait_for(addr, Duration::from_secs(30), |m| {
            counter(m, "cancelled") >= 1
        }),
        "disconnect did not cancel the solve"
    );
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "cancellation was not prompt: {:?}",
        started.elapsed()
    );
    let metrics = scrape_metrics(addr);
    assert_eq!(counter(&metrics, "completed"), 0);

    server.join();
}

/// Fault scenario (b): an overload burst sheds deterministically at the
/// queue cap with structured retry hints, while every accepted request
/// still gets its answer within its deadline.
#[test]
fn overload_burst_sheds_and_accepted_requests_complete() {
    let server = start(ServerConfig {
        workers: 1,
        max_queue_depth: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Occupy the only worker with a long solve whose client then leaves.
    let mut hog = Client::connect(addr);
    hog.send(LONG_SOLVE);
    assert!(
        wait_for(addr, Duration::from_secs(30), |m| {
            counter(m, "accepted") >= 1 && counter(m, "queue_depth") == 0
        }),
        "long solve never reached the worker"
    );

    // Burst: five more clients. The queue cap admits exactly two; the rest
    // are shed up front with retry hints.
    let mut burst: Vec<Client> = (0..5)
        .map(|i| {
            let mut c = Client::connect(addr);
            c.send(&QUICK_SOLVE.replace("\"quick\"", &format!("\"burst-{i}\"")));
            c
        })
        .collect();

    let deadline = Instant::now() + Duration::from_secs(30);
    let mut accepted = 0usize;
    let mut shed = 0usize;
    // Shed responses arrive immediately; free the worker so the accepted
    // ones can run.
    assert!(
        wait_for(addr, Duration::from_secs(10), |m| counter(m, "shed") == 3),
        "expected exactly 3 sheds (got {})",
        counter(&scrape_metrics(addr), "shed")
    );
    drop(hog);

    for client in &mut burst {
        let response = client.recv();
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            accepted += 1;
            assert_eq!(
                response.get("outcome").and_then(Json::as_str),
                Some("refined"),
                "accepted request degraded: {}",
                response.render()
            );
        } else {
            shed += 1;
            let error = response.get("error").expect("error object");
            assert_eq!(error.get("kind").and_then(Json::as_str), Some("shed"));
            assert!(
                error.get("retry_after_ms").and_then(Json::as_f64).is_some(),
                "shed without retry hint: {}",
                response.render()
            );
        }
    }
    assert_eq!((accepted, shed), (2, 3));
    assert!(
        Instant::now() < deadline,
        "accepted requests missed their deadlines"
    );

    server.join();
}

/// Graceful degradation: a deadline-exceeded solve is a *successful*
/// response carrying the interrupted outcome and full statistics.
#[test]
fn deadline_exceeded_solves_degrade_to_incumbent_responses() {
    let server = start(ServerConfig::default()).expect("bind");
    let addr = server.addr();

    let mut client = Client::connect(addr);
    let line = r#"{"op":"solve","id":"tight","dataset":"astronauts","epsilon":0.25,"distance":"JAC","deadline_ms":2000,"constraints":[{"attribute":"Gender","value":"F","k":25,"n":13}]}"#;
    let response = client.roundtrip(line);
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "deadline exceedance must not be an error: {}",
        response.render()
    );
    assert_eq!(
        response.get("outcome").and_then(Json::as_str),
        Some("interrupted")
    );
    let stats = response.get("stats").expect("stats despite interruption");
    assert_eq!(stats.get("interrupted").and_then(Json::as_bool), Some(true));

    let metrics = scrape_metrics(addr);
    assert_eq!(counter(&metrics, "timed_out"), 1);
    assert_eq!(counter(&metrics, "cancelled"), 0);
    let solver = metrics.get("solver").expect("solver aggregate");
    assert_eq!(solver.get("interrupted").and_then(Json::as_u64), Some(1));

    server.join();
}

/// Fault scenario (c): a byte-dribbling client is cut off by the per-line
/// read budget with a structured error, and concurrent well-behaved
/// clients are unaffected.
#[test]
fn slow_loris_client_times_out_without_hurting_others() {
    let server = start(ServerConfig {
        read_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let mut dribbler = Client::connect(addr);
    let payload = br#"{"op":"ping"#;
    // One byte every 100ms, never a newline: the line budget is absolute,
    // so progress does not reset it. Stop writing before the budget fires —
    // a write after the server closes would RST the connection and could
    // discard the buffered error response this test asserts on.
    for (i, byte) in payload.iter().take(4).enumerate() {
        let _ = dribbler.stream.write_all(&[*byte]);
        std::thread::sleep(Duration::from_millis(100));
        if i == 1 {
            // Mid-dribble, a well-behaved client gets normal service.
            let pong = Client::connect(addr).roundtrip(r#"{"op":"ping","id":"ok"}"#);
            assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
        }
    }

    // The dribbler got a structured bad_request before the close.
    let raw = dribbler.try_recv().expect("timeout error before close");
    let response = Json::parse(&raw).expect("structured error");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("bad_request")
    );
    assert_eq!(dribbler.try_recv(), None, "connection closed after timeout");

    let metrics = scrape_metrics(addr);
    assert!(counter(&metrics, "read_timeouts") >= 1);

    server.join();
}

/// Fault scenario (d): malformed and oversized request lines produce
/// structured errors — never a raw panic across the socket — and the
/// server stays healthy throughout.
#[test]
fn malformed_and_oversized_requests_get_structured_errors() {
    let server = start(ServerConfig::default()).expect("bind");
    let addr = server.addr();

    let mut client = Client::connect(addr);

    // Garbage: structured bad_request, connection stays usable.
    let response = client.roundtrip("hello there");
    let kind = |r: &Json| {
        r.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .map(String::from)
    };
    assert_eq!(kind(&response).as_deref(), Some("bad_request"));

    // Wrong field types and unknown datasets: same taxonomy, id echoed.
    let response = client.roundtrip(r#"{"op":"solve","id":"e1","dataset":"secrets"}"#);
    assert_eq!(kind(&response).as_deref(), Some("bad_request"));
    assert_eq!(response.get("id").and_then(Json::as_str), Some("e1"));
    let response = client.roundtrip(r#"{"op":"solve","dataset":"paper","epsilon":"lots"}"#);
    assert_eq!(kind(&response).as_deref(), Some("bad_request"));

    // The connection survived three bad requests.
    let pong = client.roundtrip(r#"{"op":"ping"}"#);
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));

    // Oversized line: structured error, then the server closes this
    // connection in self-defense.
    let mut big = Client::connect(addr);
    big.send(&format!(
        r#"{{"op":"ping","pad":"{}"}}"#,
        "x".repeat(qr_server::MAX_LINE_BYTES + 1024)
    ));
    let raw = big.try_recv().expect("structured error for oversized line");
    let response = Json::parse(&raw).expect("valid JSON");
    assert_eq!(kind(&response).as_deref(), Some("bad_request"));
    assert_eq!(big.try_recv(), None, "oversized connection is closed");

    // And the server is still healthy for new connections.
    let pong = Client::connect(addr).roundtrip(r#"{"op":"ping"}"#);
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
    let metrics = scrape_metrics(addr);
    assert!(counter(&metrics, "bad_requests") >= 4);
    assert_eq!(counter(&metrics, "internal_errors"), 0);

    server.join();
}

/// Run the long astronaut search under a small deadline and hand back the
/// interrupted response, which must carry a redeemable `resume_token`.
fn interrupted_with_token(client: &mut Client, id: &str, deadline_ms: u64) -> (Json, String) {
    let line = format!(
        r#"{{"op":"solve","id":"{id}","dataset":"astronauts","epsilon":0.25,"distance":"JAC","deadline_ms":{deadline_ms},"constraints":[{{"attribute":"Gender","value":"F","k":25,"n":13}}]}}"#
    );
    let response = client.roundtrip(&line);
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "interrupted solve must still be a success: {}",
        response.render()
    );
    assert_eq!(
        response.get("outcome").and_then(Json::as_str),
        Some("interrupted")
    );
    let token = response
        .get("resume_token")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no resume_token in {}", response.render()))
        .to_string();
    (response, token)
}

fn error_kind(response: &Json) -> Option<&str> {
    response
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
}

/// The tentpole over the wire: an interrupted solve hands out a resume
/// token; the token outlives the connection that earned it, continues the
/// search (restoring checkpointed nodes) from a brand-new connection, and
/// is strictly one-shot — replaying it is a structured `bad_request`.
#[test]
fn resume_tokens_survive_reconnects_and_are_one_shot() {
    let server = start(ServerConfig::default()).expect("bind");
    let addr = server.addr();

    let mut first = Client::connect(addr);
    let (_, token) = interrupted_with_token(&mut first, "seg-1", 2000);
    // The connection that earned the token vanishes entirely.
    drop(first);

    // A brand-new connection redeems it and the search *continues*: the
    // checkpointed frontier is restored, not rebuilt from the root.
    let mut second = Client::connect(addr);
    let resumed = second.roundtrip(&format!(
        r#"{{"op":"resume","id":"seg-2","token":"{token}","deadline_ms":2000}}"#
    ));
    assert_eq!(
        resumed.get("ok").and_then(Json::as_bool),
        Some(true),
        "resume failed: {}",
        resumed.render()
    );
    assert_eq!(resumed.get("id").and_then(Json::as_str), Some("seg-2"));
    let stats = resumed.get("stats").expect("stats payload");
    assert_eq!(stats.get("resumed_solves").and_then(Json::as_u64), Some(1));
    assert!(
        stats
            .get("nodes_restored")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "resumed segment restored no frontier: {}",
        resumed.render()
    );
    // The astronaut search is hours deep; a second 2s slice re-interrupts
    // and must mint a *fresh* token (the old one is spent).
    let next_token = resumed
        .get("resume_token")
        .and_then(Json::as_str)
        .expect("re-interrupted resume re-checkpoints");
    assert_ne!(next_token, token, "tokens must be one-shot, never reused");

    // Replaying the redeemed token is a structured bad_request.
    let replay = second.roundtrip(&format!(r#"{{"op":"resume","token":"{token}"}}"#));
    assert_eq!(error_kind(&replay), Some("bad_request"));

    let metrics = scrape_metrics(addr);
    assert!(counter(&metrics, "resume_ops") >= 2);
    let resume = metrics.get("resume").expect("resume block");
    assert!(
        resume
            .get("tokens_issued")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 2
    );
    assert_eq!(
        resume.get("tokens_redeemed").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(counter(&metrics, "internal_errors"), 0);

    server.join();
}

/// Fault scenario (e): a token pinned to a snapshot that a mutation has
/// since moved past is refused with a structured `bad_request` naming the
/// staleness — never a resurrection against the wrong data, never a panic —
/// and the server stays healthy.
#[test]
fn stale_resume_tokens_are_refused_and_the_server_stays_healthy() {
    let server = start(ServerConfig::default()).expect("bind");
    let addr = server.addr();

    let mut client = Client::connect(addr);
    let (_, token) = interrupted_with_token(&mut client, "pin", 2000);

    // Mutate the dataset behind the checkpoint: the pool hands back the
    // very session the suspended solve is pinned to.
    let session = server
        .shared()
        .pool
        .get_or_build("astronauts")
        .expect("pooled session");
    session
        .apply(vec![query_refinement::core::prelude::Mutation::delete(
            "Astronauts",
            vec![0],
        )])
        .expect("mutation applies");

    let refused = client.roundtrip(&format!(r#"{{"op":"resume","token":"{token}"}}"#));
    assert_eq!(
        error_kind(&refused),
        Some("bad_request"),
        "stale resume must be the client's problem, stated structurally: {}",
        refused.render()
    );
    let message = refused
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .expect("error message");
    assert!(
        message.contains("stale"),
        "error should name the staleness: {message}"
    );

    // The connection and the server both survived.
    let pong = client.roundtrip(r#"{"op":"ping","id":"still-up"}"#);
    assert_eq!(pong.get("ok").and_then(Json::as_bool), Some(true));
    let metrics = scrape_metrics(addr);
    assert_eq!(counter(&metrics, "internal_errors"), 0);

    server.join();
}

/// Fault scenario (f): tokens expire after the configured TTL and redeeming
/// one is a structured refusal, with the expiry visible in the metrics.
#[test]
fn resume_tokens_expire_after_their_ttl() {
    let server = start(ServerConfig {
        resume_ttl: Duration::from_millis(100),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let mut client = Client::connect(addr);
    let (_, token) = interrupted_with_token(&mut client, "fleeting", 2000);
    std::thread::sleep(Duration::from_millis(300));

    let refused = client.roundtrip(&format!(r#"{{"op":"resume","token":"{token}"}}"#));
    assert_eq!(error_kind(&refused), Some("bad_request"));
    let metrics = scrape_metrics(addr);
    let resume = metrics.get("resume").expect("resume block");
    assert!(
        resume
            .get("tokens_expired")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1
    );
    assert_eq!(
        resume.get("resident_checkpoints").and_then(Json::as_u64),
        Some(0)
    );

    server.join();
}

/// Drain never resurrects a solve: shutdown empties the resume table, and a
/// token minted before the drain is worthless after it.
#[test]
fn drain_clears_the_resume_table() {
    let server = start(ServerConfig::default()).expect("bind");
    let addr = server.addr();

    let mut client = Client::connect(addr);
    let (_, token) = interrupted_with_token(&mut client, "doomed", 2000);
    let shared = std::sync::Arc::clone(server.shared());
    assert_eq!(shared.resume_table.counters().resident, 1);

    let ack = Client::connect(addr).roundtrip(r#"{"op":"shutdown"}"#);
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    server.wait();

    assert_eq!(
        shared.resume_table.counters().resident,
        0,
        "drain must leave no suspended solves behind"
    );
    assert!(
        shared.resume_table.take(&token).is_none(),
        "a pre-drain token must be worthless after the drain"
    );
}

/// The retrying client end to end: against a live server it chains resume
/// tokens across interrupted segments — each on a fresh connection — and
/// hands back the last segment's response when its attempt budget runs out.
#[test]
fn retrying_client_chains_resume_tokens_over_the_wire() {
    let server = start(ServerConfig::default()).expect("bind");

    let client =
        qr_server::RetryingClient::new(server.addr()).with_policy(qr_server::RetryPolicy {
            max_attempts: 3,
            ..qr_server::RetryPolicy::default()
        });
    let report = client
        .solve(
            r#"{"op":"solve","id":"chained","dataset":"astronauts","epsilon":0.25,"distance":"JAC","deadline_ms":1500,"constraints":[{"attribute":"Gender","value":"F","k":25,"n":13}]}"#,
        )
        .expect("the retry loop reaches a terminal report");

    // Three round-trips: the initial solve plus two resumed segments, every
    // one interrupted by its 1.5s budget (the full search runs 90s+).
    assert_eq!(report.attempts, 3);
    assert_eq!(report.resumed_segments, 2);
    assert_eq!(report.sheds, 0);
    assert_eq!(
        report.response.get("ok").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        report.response.get("outcome").and_then(Json::as_str),
        Some("interrupted")
    );
    let stats = report.response.get("stats").expect("stats payload");
    assert_eq!(stats.get("resumed_solves").and_then(Json::as_u64), Some(1));
    assert!(
        stats
            .get("nodes_restored")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0
    );

    let metrics = scrape_metrics(server.addr());
    assert_eq!(counter(&metrics, "resume_ops"), 2);
    let resume = metrics.get("resume").expect("resume block");
    assert_eq!(
        resume.get("tokens_redeemed").and_then(Json::as_u64),
        Some(2)
    );

    server.join();
}

/// Drain: shutdown stops accepting, cancels in-flight solves via their
/// tokens, and still flushes a reply to the in-flight client.
#[test]
fn shutdown_drains_in_flight_solves_with_replies() {
    let server = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let mut inflight = Client::connect(addr);
    inflight.send(LONG_SOLVE);
    assert!(
        wait_for(addr, Duration::from_secs(30), |m| {
            counter(m, "accepted") >= 1
        }),
        "solve was never admitted"
    );

    // Wire-level shutdown from a second client.
    let ack = Client::connect(addr).roundtrip(r#"{"op":"shutdown","id":"bye"}"#);
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(ack.get("op").and_then(Json::as_str), Some("shutdown"));

    // The in-flight client still gets exactly one reply: either the solve's
    // interrupted outcome (cancelled mid-search) or an `interrupted` error
    // (cancelled before the search started).
    let raw = inflight.try_recv().expect("drain flushes a reply");
    let response = Json::parse(&raw).expect("valid JSON");
    match response.get("ok").and_then(Json::as_bool) {
        Some(true) => {
            assert_eq!(
                response.get("outcome").and_then(Json::as_str),
                Some("interrupted")
            );
        }
        _ => {
            assert_eq!(
                response
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str),
                Some("interrupted")
            );
        }
    }

    // join() returns: accept loop, workers and connection threads all wound
    // down. (A hang here fails the test by timeout.)
    server.join();

    // And the listener really is gone (allow the OS a moment to drop it).
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    if let Ok(stream) = refused {
        // Accept loop is gone; any connection the backlog sneaks in can
        // never be served — a read must hit EOF, not a response.
        let mut probe = stream;
        let _ = probe.write_all(b"{\"op\":\"ping\"}\n");
        let _ = probe.set_read_timeout(Some(Duration::from_secs(2)));
        let mut buf = [0u8; 16];
        assert!(matches!(probe.read(&mut buf), Ok(0) | Err(_)));
    }
}
