//! End-to-end integration tests over the synthetic benchmark workloads:
//! engine vs. exhaustive baseline, optimization ablations, Erica baseline —
//! all driven through the session API.
//!
//! Instances are kept deliberately small so the suite stays fast in debug
//! builds; the full-size runs live in `qr-bench`.

use query_refinement::core::erica_refine_with;
use query_refinement::core::prelude::*;
use query_refinement::datagen::{DatasetId, Workload};
use query_refinement::milp::SolverOptions;
use query_refinement::relation::prelude::*;
use std::time::Duration;

fn tiny(id: DatasetId) -> Workload {
    match id {
        DatasetId::Astronauts => Workload::astronauts(80, 1),
        DatasetId::LawStudents => Workload::law_students(150, 1),
        DatasetId::Meps => Workload::meps(150, 1),
        DatasetId::Tpch => Workload::tpch(40, 1),
    }
}

fn session_for(w: &Workload) -> RefinementSession {
    RefinementSession::new(w.db.clone(), w.query.clone()).expect("annotation builds")
}

/// Tight search limits: the Law-Students/MEPS instances are NP-hard MILPs the
/// from-scratch solver cannot prove optimal quickly, and these tests assert
/// properties of whatever incumbent the budget yields, not optimality.
fn bounded_solver_options() -> SolverOptions {
    SolverOptions {
        time_limit: Some(Duration::from_secs(10)),
        max_nodes: 20_000,
        ..SolverOptions::default()
    }
}

fn tiny_constraints(w: &Workload) -> ConstraintSet {
    ConstraintSet::new().with(w.constraint_with_bound(1, 5, Some(2)))
}

#[test]
fn tpch_engine_matches_naive_optimum() {
    let w = tiny(DatasetId::Tpch);
    let constraints = tiny_constraints(&w);
    let session = session_for(&w);
    let request = RefinementRequest::new()
        .with_constraints(constraints.clone())
        .with_epsilon(0.5)
        .with_distance(DistanceMeasure::Predicate);
    let milp = session.solve(&request).unwrap();
    // The exhaustive baseline goes through the same session and request,
    // only the backend differs.
    let naive = session
        .solve_with(&NaiveSolver::new(NaiveMode::Provenance), &request)
        .unwrap();
    let refined = milp.outcome.refined().expect("TPC-H refinement exists");
    let naive_refined = naive.outcome.refined().expect("naive refinement exists");
    assert!(
        naive_refined.proven_optimal,
        "TPC-H has a tiny refinement space; naive must finish"
    );
    assert!(
        (refined.distance - naive_refined.distance).abs() < 1e-6,
        "engine {} vs naive {}",
        refined.distance,
        naive_refined.distance
    );
}

#[test]
fn refinements_respect_the_deviation_budget_on_all_datasets() {
    for id in DatasetId::all() {
        let w = tiny(id);
        let constraints = tiny_constraints(&w);
        let result = session_for(&w)
            .solve(
                &RefinementRequest::new()
                    .with_constraints(constraints)
                    .with_epsilon(0.5)
                    .with_distance(DistanceMeasure::Predicate)
                    .with_solver_options(bounded_solver_options()),
            )
            .unwrap();
        if let Some(refined) = result.outcome.refined() {
            assert!(
                refined.deviation <= 0.5 + 1e-9,
                "{}: deviation {} exceeds ε",
                w.id.label(),
                refined.deviation
            );
            // Re-evaluating the refined query on the engine gives a ranked
            // output at least as long as k*.
            let output = evaluate(&w.db, &refined.query).unwrap();
            assert!(output.len() >= 5, "{}", w.id.label());
        }
    }
}

#[test]
fn optimizations_preserve_the_optimum_on_tpch() {
    // TPC-H keeps the model tiny (five lineage classes), so both the
    // optimized and the unoptimized build prove optimality quickly and must
    // agree on the optimum. (The heavier workloads are exercised by the
    // benchmark harness, where the unoptimized build is allowed to time out,
    // as in the paper.) One session serves both configurations.
    let w = tiny(DatasetId::Tpch);
    let session = session_for(&w);
    let base = RefinementRequest::new()
        .with_constraints(tiny_constraints(&w))
        .with_epsilon(0.5)
        .with_distance(DistanceMeasure::Predicate);
    let mut distances = Vec::new();
    for config in [OptimizationConfig::all(), OptimizationConfig::none()] {
        let result = session
            .solve(&base.clone().with_optimizations(config))
            .unwrap();
        let refined = result.outcome.refined().expect("refinement exists");
        assert!(refined.proven_optimal);
        distances.push(refined.distance);
    }
    assert!(
        (distances[0] - distances[1]).abs() < 1e-6,
        "optimized {} vs unoptimized {}",
        distances[0],
        distances[1]
    );
    assert_eq!(session.setup_stats().annotation_builds, 1);
}

#[test]
fn erica_baseline_respects_exact_output_size() {
    let w = tiny(DatasetId::LawStudents);
    let constraints = vec![OutputConstraint {
        group: Group::single("Sex", "F"),
        bound: BoundType::Lower,
        n: 3,
    }];
    let erica =
        erica_refine_with(&w.db, &w.query, &constraints, 8, bounded_solver_options()).unwrap();
    if let Some((assignment, _)) = erica.best {
        let session = session_for(&w);
        let output = query_refinement::provenance::whatif::evaluate_refinement(
            session.snapshot().annotated(),
            &assignment,
        );
        assert_eq!(output.len(), 8);
    }
}

#[test]
fn erica_solver_trait_agrees_with_direct_entry_point() {
    // The trait backend poses the request's top-k constraints as whole-output
    // constraints with output size k*; calling the direct function with that
    // same translation must give the same distance.
    let w = tiny(DatasetId::Tpch);
    let session = session_for(&w);
    let k = 5;
    let request = RefinementRequest::new()
        .with_constraint(w.constraint_with_bound(1, k, Some(2)))
        .with_solver_options(bounded_solver_options());
    let via_trait = session.solve_with(&EricaSolver, &request).unwrap();
    let constraint = &request.constraints.constraints()[0];
    let direct = erica_refine_with(
        &w.db,
        &w.query,
        &[OutputConstraint {
            group: constraint.group.clone(),
            bound: constraint.bound,
            n: constraint.n,
        }],
        k,
        bounded_solver_options(),
    )
    .unwrap();
    match (via_trait.outcome.refined(), &direct.best) {
        (Some(refined), Some((_, distance))) => {
            assert!(
                (refined.distance - distance).abs() < 1e-6,
                "trait {} vs direct {}",
                refined.distance,
                distance
            );
        }
        (None, None) => {}
        (trait_outcome, direct_outcome) => panic!(
            "trait and direct Erica disagree: {:?} vs {:?}",
            trait_outcome.is_some(),
            direct_outcome.is_some()
        ),
    }
}

#[test]
fn stats_report_setup_and_solver_split() {
    let w = tiny(DatasetId::Tpch);
    let session = session_for(&w);
    let result = session
        .solve(
            &RefinementRequest::new()
                .with_constraints(tiny_constraints(&w))
                .with_epsilon(0.5),
        )
        .unwrap();
    let stats = &result.stats;
    assert!(stats.total_time >= stats.setup_time);
    assert!(stats.num_variables > 0 && stats.num_constraints > 0);
    assert!(
        stats.lineage_classes >= 1 && stats.lineage_classes <= 5,
        "Q5 has at most 5 classes"
    );
    // The split: session solves carry no annotation time of their own ...
    assert!(stats.annotation_time.is_zero());
    assert_eq!(stats.setup_time, stats.model_build_time);
    // ... the session does, once.
    assert_eq!(session.setup_stats().annotation_builds, 1);
}
