//! End-to-end integration tests over the synthetic benchmark workloads:
//! engine vs. exhaustive baseline, optimization ablations, Erica baseline.
//!
//! Instances are kept deliberately small so the suite stays fast in debug
//! builds; the full-size runs live in `qr-bench`.

use query_refinement::core::erica_refine_with;
use query_refinement::core::prelude::*;
use query_refinement::datagen::{DatasetId, Workload};
use query_refinement::milp::SolverOptions;
use query_refinement::provenance::AnnotatedRelation;
use query_refinement::relation::prelude::*;
use std::time::Duration;

fn tiny(id: DatasetId) -> Workload {
    match id {
        DatasetId::Astronauts => Workload::astronauts(80, 1),
        DatasetId::LawStudents => Workload::law_students(150, 1),
        DatasetId::Meps => Workload::meps(150, 1),
        DatasetId::Tpch => Workload::tpch(40, 1),
    }
}

/// Tight search limits: the Law-Students/MEPS instances are NP-hard MILPs the
/// from-scratch solver cannot prove optimal quickly, and these tests assert
/// properties of whatever incumbent the budget yields, not optimality.
fn bounded_solver_options() -> SolverOptions {
    SolverOptions {
        time_limit: Some(Duration::from_secs(10)),
        max_nodes: 20_000,
        ..SolverOptions::default()
    }
}

fn tiny_constraints(w: &Workload) -> ConstraintSet {
    ConstraintSet::new().with(w.constraint_with_bound(1, 5, Some(2)))
}

#[test]
fn tpch_engine_matches_naive_optimum() {
    let w = tiny(DatasetId::Tpch);
    let constraints = tiny_constraints(&w);
    let milp = RefinementEngine::new(&w.db, w.query.clone())
        .with_constraints(constraints.clone())
        .with_epsilon(0.5)
        .with_distance(DistanceMeasure::Predicate)
        .solve()
        .unwrap();
    let naive = naive_search(
        &w.db,
        &w.query,
        &constraints,
        0.5,
        DistanceMeasure::Predicate,
        &NaiveOptions::default(),
    )
    .unwrap();
    let refined = milp.outcome.refined().expect("TPC-H refinement exists");
    let (_, naive_dist, _) = naive.best.expect("naive refinement exists");
    assert!(
        naive.exhausted,
        "TPC-H has a tiny refinement space; naive must finish"
    );
    assert!(
        (refined.distance - naive_dist).abs() < 1e-6,
        "engine {} vs naive {}",
        refined.distance,
        naive_dist
    );
}

#[test]
fn refinements_respect_the_deviation_budget_on_all_datasets() {
    for id in DatasetId::all() {
        let w = tiny(id);
        let constraints = tiny_constraints(&w);
        let result = RefinementEngine::new(&w.db, w.query.clone())
            .with_constraints(constraints.clone())
            .with_epsilon(0.5)
            .with_distance(DistanceMeasure::Predicate)
            .with_solver_options(bounded_solver_options())
            .solve()
            .unwrap();
        if let Some(refined) = result.outcome.refined() {
            assert!(
                refined.deviation <= 0.5 + 1e-9,
                "{}: deviation {} exceeds ε",
                w.id.label(),
                refined.deviation
            );
            // Re-evaluating the refined query on the engine gives a ranked
            // output at least as long as k*.
            let output = evaluate(&w.db, &refined.query).unwrap();
            assert!(output.len() >= 5, "{}", w.id.label());
        }
    }
}

#[test]
fn optimizations_preserve_the_optimum_on_tpch() {
    // TPC-H keeps the model tiny (five lineage classes), so both the
    // optimized and the unoptimized build prove optimality quickly and must
    // agree on the optimum. (The heavier workloads are exercised by the
    // benchmark harness, where the unoptimized build is allowed to time out,
    // as in the paper.)
    let w = tiny(DatasetId::Tpch);
    let constraints = tiny_constraints(&w);
    let mut distances = Vec::new();
    for config in [OptimizationConfig::all(), OptimizationConfig::none()] {
        let result = RefinementEngine::new(&w.db, w.query.clone())
            .with_constraints(constraints.clone())
            .with_epsilon(0.5)
            .with_distance(DistanceMeasure::Predicate)
            .with_optimizations(config)
            .solve()
            .unwrap();
        let refined = result.outcome.refined().expect("refinement exists");
        assert!(refined.proven_optimal);
        distances.push(refined.distance);
    }
    assert!(
        (distances[0] - distances[1]).abs() < 1e-6,
        "optimized {} vs unoptimized {}",
        distances[0],
        distances[1]
    );
}

#[test]
fn erica_baseline_respects_exact_output_size() {
    let w = tiny(DatasetId::LawStudents);
    let constraints = vec![OutputConstraint {
        group: Group::single("Sex", "F"),
        bound: BoundType::Lower,
        n: 3,
    }];
    let erica =
        erica_refine_with(&w.db, &w.query, &constraints, 8, bounded_solver_options()).unwrap();
    if let Some((assignment, _)) = erica.best {
        let annotated = AnnotatedRelation::build(&w.db, &w.query).unwrap();
        let output =
            query_refinement::provenance::whatif::evaluate_refinement(&annotated, &assignment);
        assert_eq!(output.len(), 8);
    }
}

#[test]
fn stats_report_setup_and_solver_split() {
    let w = tiny(DatasetId::Tpch);
    let result = RefinementEngine::new(&w.db, w.query.clone())
        .with_constraints(tiny_constraints(&w))
        .with_epsilon(0.5)
        .solve()
        .unwrap();
    let stats = &result.stats;
    assert!(stats.total_time >= stats.setup_time);
    assert!(stats.num_variables > 0 && stats.num_constraints > 0);
    assert!(
        stats.lineage_classes >= 1 && stats.lineage_classes <= 5,
        "Q5 has at most 5 classes"
    );
}
