//! Cancellation-latency contract: cancelling a fig3-scale solve mid-flight
//! returns promptly with `RefinementOutcome::Interrupted`, a usable
//! incumbent, and a complete `RefinementStats` snapshot.

use query_refinement::core::prelude::*;
use query_refinement::datagen::Workload;
use query_refinement::milp::SolverOptions;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The fig3 astronaut workload configuration used by the warm-start
/// acceptance test — a real MILP search over thousands of node LPs.
fn fig3_session_and_request() -> (RefinementSession, RefinementRequest) {
    let w = Workload::astronauts(100, 20240317);
    let constraints = ConstraintSet::new().with(w.constraint_with_bound(1, 5, Some(2)));
    let session = RefinementSession::new(w.db.clone(), w.query.clone()).unwrap();
    let request = RefinementRequest::new()
        .with_constraints(constraints)
        .with_epsilon(0.5)
        .with_solver_options(SolverOptions {
            time_limit: Some(Duration::from_secs(120)),
            max_nodes: 1_000_000,
            ..SolverOptions::default()
        });
    (session, request)
}

/// Observer that cancels the solve as soon as the search holds an incumbent
/// *and* has processed a handful of nodes past it — deterministic mid-flight
/// cancellation that does not depend on machine speed — and records when the
/// cancel was issued so the test can measure the return latency.
struct CancelMidFlight {
    token: CancelToken,
    cancelled_at: Mutex<Option<Instant>>,
    armed: AtomicBool,
}

impl SolveObserver for CancelMidFlight {
    fn incumbent_found(&self, _progress: &SolveProgress) {
        self.armed.store(true, Ordering::Release);
    }

    fn node_processed(&self, progress: &SolveProgress) {
        if self.armed.load(Ordering::Acquire) && progress.nodes >= 8 {
            let mut at = self.cancelled_at.lock().unwrap();
            if at.is_none() {
                *at = Some(Instant::now());
                self.token.cancel();
            }
        }
    }
}

#[test]
fn cancelling_a_fig3_solve_returns_promptly_with_incumbent_and_stats() {
    let (session, base) = fig3_session_and_request();
    let token = CancelToken::new();
    let observer = Arc::new(CancelMidFlight {
        token: token.clone(),
        cancelled_at: Mutex::new(None),
        armed: AtomicBool::new(false),
    });
    let request = base
        .clone()
        .with_cancel_token(token)
        .with_observer(observer.clone());

    let result = session.solve(&request).unwrap();
    let cancelled_at = observer
        .cancelled_at
        .lock()
        .unwrap()
        .expect("the observer cancelled mid-flight");
    // Cancellation is polled every node and every 64 pivots inside an LP, so
    // the solve must come back within a few pivots of the cancel. A generous
    // bound keeps the assertion robust on a loaded CI box while still being
    // far below what the full search takes.
    let latency = cancelled_at.elapsed();
    assert!(
        latency < Duration::from_secs(5),
        "cancelled solve took {latency:?} to return"
    );

    // The outcome is the interrupted terminal state with the best incumbent.
    assert!(result.outcome.is_interrupted());
    assert!(result.stats.interrupted);
    let best = result
        .outcome
        .refined()
        .expect("the incumbent found before the cancel is carried out");
    assert!(best.deviation <= 0.5 + 1e-9, "incumbent respects epsilon");
    assert!(!best.proven_optimal);

    // The stats snapshot is complete and consistent with the observer's view.
    assert!(result.stats.nodes >= 8);
    assert!(result.stats.lp_solves > 0);
    assert!(result.stats.simplex_iterations > 0);
    assert!(result.stats.total_time >= result.stats.solver_time);

    // And the interruption really did cut the search short: the same request
    // without the token explores further.
    let full = session.solve(&base).unwrap();
    assert!(full.outcome.is_refined() && !full.outcome.is_interrupted());
    assert!(full.stats.nodes > result.stats.nodes);
    let full_best = full.outcome.refined().unwrap();
    assert!(full_best.distance <= best.distance + 1e-9);
}

#[test]
fn unified_time_limit_interrupts_every_backend_mid_search() {
    // A deadline so tight no backend can finish the astronaut workload, but
    // long enough that the MILP usually seeds an incumbent first. All three
    // algorithm families must come back Interrupted — not run to completion,
    // and not mislabel the stop as a proven answer.
    let (session, base) = fig3_session_and_request();
    // Overshoot bound derived from this machine's measured annotation-build
    // baseline rather than a fixed wall-clock constant: a loaded CI box that
    // took 1s to build the annotation is allowed proportionally more slack,
    // while a fast machine still gets a tight 5s ceiling.
    let baseline = session.setup_stats().annotation_time;
    let overshoot_bound = Duration::from_secs(5).max(baseline * 20);
    let backends: Vec<Box<dyn RefinementSolver>> = vec![
        Box::new(MilpSolver),
        Box::new(NaiveSolver::new(NaiveMode::Provenance)),
    ];
    for backend in &backends {
        let request = base.clone().with_time_limit(Duration::from_millis(30));
        let start = Instant::now();
        let result = session.solve_with(backend.as_ref(), &request).unwrap();
        let elapsed = start.elapsed();
        assert!(
            result.outcome.is_interrupted(),
            "{}: expected Interrupted, got {:?}",
            backend.label(&request),
            result.outcome
        );
        assert!(
            elapsed < overshoot_bound,
            "{}: deadline overshoot ({elapsed:?} vs bound {overshoot_bound:?})",
            backend.label(&request)
        );
    }
}
