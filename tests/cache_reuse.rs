//! Cross-request reuse and portfolio racing, end to end.
//!
//! Four contracts, mirroring the subsystem's promises:
//!
//! * **Work reduction**: a fig5-style ε-sweep on a cache-enabled session
//!   does measurably fewer cold LP solves and fewer total simplex pivots
//!   than the identical sweep cache-off — asserted through
//!   [`RefinementStats`], not timing.
//! * **Answer identity**: caching is an optimization, never a semantic: over
//!   random ε/constraint sequences, a cached session's answers are
//!   result-identical to an uncached session's (distance / deviation /
//!   proven flags — assignments may tie-flip among equal optima).
//! * **Invalidation**: [`RefinementSession::apply`] bumps the snapshot
//!   version, after which no stale cache entry can be served — the mutated
//!   session answers exactly like a fresh, cache-less session on the
//!   mutated database.
//! * **Portfolio racing**: `solve_portfolio` returns the first acceptable
//!   backend's answer and trips the losers' shared [`CancelToken`],
//!   observer-verified: a deliberately slow entrant streams progress events
//!   until the cancellation reaches it mid-flight.

use proptest::prelude::*;
use query_refinement::core::paper_example::{
    paper_database, scholarship_constraints, scholarship_query,
};
use query_refinement::core::prelude::*;
use query_refinement::core::solver::RefinementSolver;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOL: f64 = qr_milp::tol::ASSERT_TOL;

fn session() -> RefinementSession {
    RefinementSession::new(paper_database(), scholarship_query()).expect("session builds")
}

fn base_request() -> RefinementRequest {
    RefinementRequest::new().with_constraints(scholarship_constraints())
}

/// Result identity as the solver defines it: same outcome kind, same
/// distance/deviation/optimality claims. Variable assignments may differ
/// among equally-optimal refinements (degenerate ties), so they are not part
/// of the contract.
fn assert_result_identical(a: &RefinementResult, b: &RefinementResult, context: &str) {
    match (&a.outcome, &b.outcome) {
        (RefinementOutcome::Refined(ra), RefinementOutcome::Refined(rb)) => {
            assert!(
                (ra.distance - rb.distance).abs() <= TOL,
                "{context}: distance {} vs {}",
                ra.distance,
                rb.distance
            );
            assert!(
                ra.deviation <= rb.deviation + TOL && rb.deviation <= ra.deviation + TOL,
                "{context}: deviation {} vs {}",
                ra.deviation,
                rb.deviation
            );
            assert_eq!(
                ra.proven_optimal, rb.proven_optimal,
                "{context}: optimality claims differ"
            );
        }
        (
            RefinementOutcome::NoRefinement {
                proven_infeasible: pa,
            },
            RefinementOutcome::NoRefinement {
                proven_infeasible: pb,
            },
        ) => assert_eq!(pa, pb, "{context}: infeasibility claims differ"),
        (oa, ob) => panic!("{context}: outcome kinds differ: {oa:?} vs {ob:?}"),
    }
}

/// The tentpole's headline contract: chaining warm starts across the
/// requests of an ε-sweep removes cold LP solves and pivots, visibly in the
/// stats, without changing a single answer.
#[test]
fn cached_epsilon_sweep_does_measurably_less_cold_work() {
    let epsilons = [0.5, 0.4, 0.3, 0.2, 0.1, 0.0];
    let cold_session = session();
    let warm_session = session().with_solution_cache(16);
    let base = base_request();

    let cold = cold_session
        .sweep_epsilon(&base, &epsilons)
        .expect("cache-off sweep");
    let warm = warm_session
        .sweep_epsilon(&base, &epsilons)
        .expect("cache-on sweep");

    // Identical answers, point for point.
    for ((eps, c), w) in epsilons.iter().zip(&cold).zip(&warm) {
        assert_result_identical(c, w, &format!("ε={eps}"));
        // ε only moves the deviation budget's right-hand side; the layout
        // must match for bases to be transplantable at all.
        assert_eq!(c.stats.num_variables, w.stats.num_variables);
    }

    let cold_cold_lps: usize = cold.iter().map(|r| r.stats.cold_lp_solves).sum();
    let warm_cold_lps: usize = warm.iter().map(|r| r.stats.cold_lp_solves).sum();
    let cold_pivots: usize = cold.iter().map(|r| r.stats.simplex_iterations).sum();
    let warm_pivots: usize = warm.iter().map(|r| r.stats.simplex_iterations).sum();
    let warm_entries: usize = warm.iter().map(|r| r.stats.cache_warm_starts).sum();

    assert!(
        warm_entries >= 1,
        "at least one sweep point must warm-start from a cached basis"
    );
    assert!(
        warm_cold_lps < cold_cold_lps,
        "cache-on sweep must do fewer cold LP solves ({warm_cold_lps} vs {cold_cold_lps})"
    );
    assert!(
        warm_pivots < cold_pivots,
        "cache-on sweep must do fewer total pivots ({warm_pivots} vs {cold_pivots})"
    );
    // The cache-off session must never report cache traffic.
    assert!(cold
        .iter()
        .all(|r| r.stats.cache_hits == 0 && r.stats.cache_misses == 0));
}

/// An exact repeat of a proven solve is served from the memo: no model
/// build, no solver, `cache_hits = 1`, same answer.
#[test]
fn exact_repeat_is_served_from_the_memo() {
    let cached = session().with_solution_cache(8);
    let request = base_request().with_epsilon(0.0);
    let first = cached.solve(&request).expect("first solve");
    assert_eq!(first.stats.cache_hits, 0);
    assert_eq!(first.stats.cache_misses, 1);

    let second = cached.solve(&request).expect("repeat solve");
    assert_result_identical(&first, &second, "memo repeat");
    assert_eq!(second.stats.cache_hits, 1);
    assert_eq!(second.stats.cache_misses, 0);
    assert_eq!(second.stats.nodes, 0, "no search ran");
    assert_eq!(second.stats.lp_solves, 0, "no LP ran");
    assert!(
        second.stats.model_build_time.is_zero(),
        "no model was built"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Answer identity under reuse, fuzzed: for a random constraint
    /// tightness and a random ε sequence (duplicates and near-duplicates
    /// included — exactly the traffic that exercises memo hits and
    /// nearest-ε warm starts), every cached answer equals the uncached one.
    #[test]
    fn cached_solves_are_result_identical_to_cold_solves(
        min_women in 1usize..4,
        epsilons in proptest::collection::vec(0.0f64..1.0, 1..7),
    ) {
        let constraints = ConstraintSet::from_constraints(vec![
            CardinalityConstraint::at_least(Group::single("Gender", "F"), 6, min_women),
        ]);
        let cold_session = session();
        let warm_session = session().with_solution_cache(4);
        for (i, eps) in epsilons.iter().enumerate() {
            // Round to a small grid so repeats (exact memo hits) actually
            // occur alongside fresh values.
            let eps = (eps * 8.0).round() / 8.0;
            let request = RefinementRequest::new()
                .with_constraints(constraints.clone())
                .with_epsilon(eps);
            let cold = cold_session.solve(&request).expect("cold solve");
            let warm = warm_session.solve(&request).expect("cached solve");
            assert_result_identical(&cold, &warm, &format!("step {i}, ε={eps}"));
        }
    }

    /// Invalidation, fuzzed across mutate/solve interleavings: after an
    /// `apply`, the cached session answers exactly like a fresh cache-less
    /// session on the mutated database — a stale entry is never served
    /// (version mismatch), and the memo counters restart from zero.
    #[test]
    fn apply_never_serves_a_stale_entry(
        epsilons in proptest::collection::vec(0.0f64..1.0, 1..4),
        delete_id in 0u64..6,
    ) {
        let cached = session().with_solution_cache(8);
        let grid: Vec<f64> = epsilons.iter().map(|e| (e * 4.0).round() / 4.0).collect();
        // Warm the cache (memos + bases for every point) at version 1.
        cached.sweep_epsilon(&base_request(), &grid).expect("warm-up sweep");

        let mutation = Mutation::delete("Activities", vec![delete_id]);
        cached.apply(vec![mutation.clone()]).expect("mutation applies");

        let fresh = session();
        fresh.apply(vec![mutation]).expect("mutation applies");

        let mut served_at_new_version: Vec<f64> = Vec::new();
        for eps in &grid {
            let request = base_request().with_epsilon(*eps);
            let after = cached.solve(&request).expect("post-apply solve");
            let expected = fresh.solve(&request).expect("reference solve");
            assert_result_identical(&expected, &after, &format!("post-apply ε={eps}"));
            if served_at_new_version.contains(eps) {
                // A repeat *within* the new version may hit its own memo…
                prop_assert_eq!(after.stats.cache_hits, 1);
            } else {
                // …but a memo recorded before the mutation must never be
                // served after it.
                prop_assert_eq!(after.stats.cache_hits, 0);
                served_at_new_version.push(*eps);
            }
        }
    }
}

/// Stale entries are also *reclaimed*, not just bypassed: serving the new
/// version lazily evicts everything recorded at the old one.
#[test]
fn version_mismatch_evicts_stale_entries() {
    let cached = session().with_solution_cache(8);
    cached
        .sweep_epsilon(&base_request(), &[0.0, 0.25, 0.5])
        .expect("warm-up sweep");
    let occupied = cached.solution_cache().expect("cache enabled").len();
    assert!(occupied >= 1, "the sweep must have populated the cache");

    cached
        .apply(vec![Mutation::delete("Activities", vec![0])])
        .expect("mutation applies");
    // First post-mutation solve serves version 2: every version-1 slot is
    // unreachable and gets pruned; only the new solve's entry remains.
    cached
        .solve(&base_request().with_epsilon(0.25))
        .expect("post-apply solve");
    assert_eq!(
        cached.solution_cache().expect("cache enabled").len(),
        1,
        "all pre-mutation entries must be evicted on first use of the new version"
    );
}

/// A deliberately slow entrant: streams `node_processed` events through the
/// request's observer (proof it is genuinely mid-flight) until the shared
/// race token interrupts it, then reports `Interrupted` and records that the
/// cancellation reached it.
struct SlowEntrant {
    saw_cancel: AtomicBool,
}

impl RefinementSolver for SlowEntrant {
    fn label(&self, _request: &RefinementRequest) -> String {
        "slow-entrant".to_string()
    }

    fn solve(
        &self,
        _session: &RefinementSession,
        request: &RefinementRequest,
    ) -> query_refinement::core::Result<RefinementResult> {
        let stop = request.control.stop_condition(Instant::now(), None);
        let mut progress_nodes = 0usize;
        while !stop.should_stop() {
            progress_nodes += 1;
            if let Some(observer) = request.control.observer() {
                observer.node_processed(&SolveProgress {
                    nodes: progress_nodes,
                    lp_solves: 0,
                    simplex_iterations: 0,
                    incumbent_objective: None,
                    best_bound: f64::NEG_INFINITY,
                });
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        self.saw_cancel.store(true, Ordering::Release);
        Ok(RefinementResult {
            outcome: RefinementOutcome::Interrupted { best: None },
            stats: RefinementStats {
                interrupted: true,
                ..Default::default()
            },
            resume: None,
        })
    }
}

/// Counts progress events, proving the slow entrant was running when the
/// winner tripped the shared token.
#[derive(Default)]
struct EventCounter {
    nodes_seen: AtomicUsize,
}

impl SolveObserver for EventCounter {
    fn node_processed(&self, _progress: &SolveProgress) {
        self.nodes_seen.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn portfolio_returns_first_acceptable_answer_and_cancels_losers() {
    let session = session();
    let observer = Arc::new(EventCounter::default());
    let request = base_request()
        .with_epsilon(0.0)
        .with_observer(Arc::clone(&observer) as Arc<dyn SolveObserver>);

    let slow = SlowEntrant {
        saw_cancel: AtomicBool::new(false),
    };
    let entrants: [(PortfolioBackend, &dyn RefinementSolver); 2] = [
        // The real MILP engine: terminates with a proven optimum.
        (PortfolioBackend::Milp, &MilpSolver),
        // The blocker: would spin forever if the winner's cancellation
        // never propagated.
        (PortfolioBackend::Erica, &slow),
    ];
    let race = session
        .solve_portfolio_with(&entrants, &request)
        .expect("race completes");

    // The first acceptable answer won and is the returned result.
    assert_eq!(race.winner, Some(PortfolioBackend::Milp));
    assert_eq!(
        race.result.stats.portfolio_winner,
        Some(PortfolioBackend::Milp)
    );
    assert_eq!(race.result.stats.portfolio_races, 1);
    let refined = race.result.outcome.refined().expect("a refinement");
    assert!(refined.proven_optimal);
    assert!((refined.distance - 0.5).abs() <= TOL);

    // Observer-verified cancellation: the loser was genuinely mid-flight
    // (its progress events reached the request's observer) and the shared
    // token interrupted it.
    assert!(
        observer.nodes_seen.load(Ordering::Relaxed) >= 1,
        "the slow entrant must have streamed progress before cancellation"
    );
    assert!(
        slow.saw_cancel.load(Ordering::Acquire),
        "the winner's cancellation must reach the losing entrant"
    );
    let loser = race
        .entries
        .iter()
        .find(|e| e.backend == PortfolioBackend::Erica)
        .expect("loser entry present");
    let loser_result = loser.result.as_ref().expect("loser returned a result");
    assert!(
        loser_result.outcome.is_interrupted(),
        "the loser must report the interruption"
    );
    assert!(loser_result.stats.interrupted);
}

/// The default three-backend portfolio agrees with the plain MILP path on
/// the paper example — whoever wins, the answer is the proven optimum.
#[test]
fn default_portfolio_agrees_with_direct_solve() {
    let s = session();
    let request = base_request().with_epsilon(0.0);
    let direct = s.solve(&request).expect("direct solve");
    let raced = s.solve_portfolio(&request).expect("portfolio solve");
    assert_result_identical(&direct, &raced, "portfolio vs direct");
    assert_eq!(raced.stats.portfolio_races, 1);
}
