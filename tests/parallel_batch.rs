//! Parallel-execution contract: `solve_batch_parallel` on worker threads
//! returns byte-identical `RefinementOutcome`s, in the same order, as the
//! sequential `solve_batch` — property-tested over random request batches on
//! the fig3 astronaut workload — and a session shared via `Arc` across
//! manually spawned threads behaves the same way.

use proptest::prelude::*;
use query_refinement::core::prelude::*;
use query_refinement::datagen::Workload;
use query_refinement::milp::SolverOptions;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One fig3 astronaut session shared by every proptest case (annotation is
/// paid once for the whole suite; the session is `Sync`, so cases and their
/// worker threads may all read it).
fn fig3_session() -> &'static RefinementSession {
    static SESSION: OnceLock<RefinementSession> = OnceLock::new();
    SESSION.get_or_init(|| {
        let w = Workload::astronauts(100, 20240317);
        RefinementSession::new(w.db.clone(), w.query.clone()).unwrap()
    })
}

fn fig3_request(epsilon: f64, bound: usize, distance: DistanceMeasure) -> RefinementRequest {
    let w = Workload::astronauts(100, 20240317);
    RefinementRequest::new()
        .with_constraints(ConstraintSet::new().with(w.constraint_with_bound(1, 5, Some(bound))))
        .with_epsilon(epsilon)
        .with_distance(distance)
        .with_solver_options(SolverOptions {
            time_limit: Some(Duration::from_secs(60)),
            max_nodes: 20_000,
            ..SolverOptions::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The acceptance criterion of the parallel batch API: for any batch of
    /// requests, the 4-worker parallel path returns outcomes byte-identical
    /// (same `Debug` rendering, which covers every field bit-for-bit) and in
    /// the same order as the sequential path.
    #[test]
    fn four_worker_batch_is_byte_identical_to_sequential(
        specs in proptest::collection::vec((0usize..4, 1usize..3), 2..5),
    ) {
        const EPSILONS: [f64; 4] = [0.0, 0.25, 0.5, 1.0];
        let session = fig3_session();
        let requests: Vec<RefinementRequest> = specs
            .iter()
            .map(|&(eps_idx, bound)| {
                fig3_request(EPSILONS[eps_idx], bound, DistanceMeasure::Predicate)
            })
            .collect();
        let sequential = session.solve_batch(&requests).unwrap();
        let parallel = session.solve_batch_parallel(&requests, 4).unwrap();
        prop_assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            prop_assert_eq!(format!("{:?}", s.outcome), format!("{:?}", p.outcome));
        }
        prop_assert_eq!(session.setup_stats().annotation_builds, 1);
    }
}

/// The `Arc<RefinementSession>` worker-pool pattern from the README: spawn
/// plain `std::thread` workers over a shared session and collect the same
/// answers the session gives sequentially.
#[test]
fn arc_shared_session_across_threads_matches_sequential() {
    let session = Arc::new({
        let w = Workload::astronauts(100, 20240317);
        RefinementSession::new(w.db.clone(), w.query.clone()).unwrap()
    });
    let requests: Vec<RefinementRequest> = [0.0, 0.5, 1.0]
        .iter()
        .map(|&eps| fig3_request(eps, 2, DistanceMeasure::Predicate))
        .collect();

    let handles: Vec<_> = requests
        .iter()
        .map(|request| {
            let session = Arc::clone(&session);
            let request = request.clone();
            std::thread::spawn(move || session.solve(&request).unwrap())
        })
        .collect();
    let threaded: Vec<RefinementResult> = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked"))
        .collect();

    let sequential = session.solve_batch(&requests).unwrap();
    for (s, t) in sequential.iter().zip(&threaded) {
        assert_eq!(format!("{:?}", s.outcome), format!("{:?}", t.outcome));
    }
    assert_eq!(session.setup_stats().annotation_builds, 1);
}

/// The parallel sweep mirrors `sweep_epsilon` exactly (fig5's access
/// pattern, now answerable by a pool).
#[test]
fn parallel_epsilon_sweep_matches_sequential() {
    let session = fig3_session();
    let base = fig3_request(0.0, 2, DistanceMeasure::Predicate);
    let epsilons = [0.0, 0.25, 0.5, 1.0];
    let sequential = session.sweep_epsilon(&base, &epsilons).unwrap();
    let parallel = session.sweep_epsilon_parallel(&base, &epsilons, 4).unwrap();
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(format!("{:?}", s.outcome), format!("{:?}", p.outcome));
    }
}
