//! Smoke test for the doc-facing entry points: every example under
//! `examples/` must run to completion via `cargo run --example`, and the
//! quickstart must actually print a refined query. Examples rot silently
//! otherwise — they are compiled by `cargo test` but never executed.

use std::path::Path;
use std::process::Command;

/// All examples, in roughly increasing runtime order. Keep in sync with
/// `examples/*.rs`.
const EXAMPLES: &[&str] = &[
    "quickstart",
    "concurrent_service",
    "resumable_service",
    "tpch_market_segments",
    "healthcare_study",
    "scholarship_awards",
    "astronaut_mission",
];

fn run_example(name: &str) -> std::process::Output {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    Command::new(cargo)
        .args(["run", "-q", "--example", name])
        .current_dir(Path::new(env!("CARGO_MANIFEST_DIR")))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"))
}

#[test]
fn quickstart_prints_a_refined_query() {
    let out = run_example("quickstart");
    assert!(
        out.status.success(),
        "quickstart failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The quickstart prints the refined query's SQL and a deviation report.
    assert!(
        stdout.contains("WHERE"),
        "quickstart did not print a refined query:\n{stdout}"
    );
    assert!(
        stdout.contains("deviation"),
        "quickstart did not report the deviation:\n{stdout}"
    );
}

#[test]
fn all_examples_run_to_completion() {
    // Sequential on purpose: each example may use its full solver budget, and
    // running them in parallel would thrash the machine the suite times on.
    for &name in EXAMPLES {
        let out = run_example(name);
        assert!(
            out.status.success(),
            "example `{name}` exited with {:?}:\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn example_list_is_exhaustive() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut on_disk: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(String::from)
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(
        listed, on_disk,
        "examples_smoke.rs EXAMPLES list is out of sync with examples/"
    );
}
