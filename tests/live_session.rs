//! Snapshot-isolation contract of live sessions: a solve pins the snapshot
//! current when it starts, so a mutation applied *mid-flight* cannot change
//! its answer — while the very next request sees the new database version.

use query_refinement::core::prelude::*;
use query_refinement::datagen::Workload;
use query_refinement::milp::SolverOptions;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Observer that, on the first branch-and-bound node, hands control to the
/// test thread and blocks until it has applied a database mutation — a
/// deterministic way to interleave `apply` with a solve that is provably
/// mid-search.
struct PauseForMutation {
    reached_search: Sender<()>,
    mutation_done: Mutex<Receiver<()>>,
    fired: AtomicBool,
}

impl SolveObserver for PauseForMutation {
    fn node_processed(&self, _progress: &SolveProgress) {
        if !self.fired.swap(true, Ordering::SeqCst) {
            self.reached_search.send(()).expect("test thread alive");
            self.mutation_done
                .lock()
                .unwrap()
                .recv()
                .expect("mutation applied");
        }
    }
}

#[test]
fn mid_flight_mutation_does_not_change_a_pinned_solve() {
    // The fig3 astronaut workload: a real MILP search with enough nodes that
    // the observer reliably fires before the solve finishes.
    let w = Workload::astronauts(100, 20240317);
    let constraints = ConstraintSet::new().with(w.constraint_with_bound(1, 5, Some(2)));
    let session = RefinementSession::new(w.db.clone(), w.query.clone()).unwrap();
    let request = RefinementRequest::new()
        .with_constraints(constraints)
        .with_epsilon(0.5)
        .with_solver_options(SolverOptions {
            time_limit: Some(Duration::from_secs(120)),
            max_nodes: 1_000_000,
            ..SolverOptions::default()
        });

    // Deterministic reference answer against version 1.
    let pinned = session.snapshot();
    assert_eq!(pinned.version(), 1);
    let baseline = session.solve_on(&pinned, &request).unwrap();

    let (reached_tx, reached_rx) = mpsc::channel();
    let (done_tx, done_rx) = mpsc::channel();
    let observer = Arc::new(PauseForMutation {
        reached_search: reached_tx,
        mutation_done: Mutex::new(done_rx),
        fired: AtomicBool::new(false),
    });
    let observed_request = request.clone().with_observer(observer);

    let inflight = std::thread::scope(|scope| {
        let handle = scope.spawn(|| session.solve(&observed_request).unwrap());

        // Wait until the solver is provably mid-search, then delete a slice
        // of the astronauts out from under it.
        reached_rx.recv().expect("solver reaches the search");
        let victims: Vec<u64> =
            session.snapshot().db().get("Astronauts").unwrap().row_ids()[..10].to_vec();
        let version = session
            .apply(vec![Mutation::delete("Astronauts", victims)])
            .unwrap();
        assert_eq!(version, 2, "the mutation installed a new snapshot");
        done_tx.send(()).expect("observer is waiting");

        handle.join().expect("solve thread")
    });

    // The in-flight solve kept its pinned snapshot: its answer is
    // byte-identical to the pre-mutation baseline, mutation notwithstanding.
    assert_eq!(
        format!("{:?}", inflight.outcome),
        format!("{:?}", baseline.outcome),
        "mid-flight mutation leaked into a pinned solve"
    );

    // A fresh request sees the new version: fewer base rows, fewer annotated
    // tuples, and the session reports the delta repair.
    let fresh = session.snapshot();
    assert_eq!(fresh.version(), 2);
    assert_eq!(
        fresh.annotated().len() + 10,
        pinned.annotated().len(),
        "the single-table workload loses one annotated tuple per deleted row"
    );
    let stats = session.setup_stats();
    assert_eq!(stats.annotation_builds, 1, "repair, not rebuild");
    assert_eq!(stats.delta_annotations, 1);
    assert_eq!(stats.snapshot_version, 2);

    // And the post-mutation solve runs against the new snapshot end to end.
    let after = session.solve(&request).unwrap();
    assert!(!after.outcome.is_interrupted());
}
