//! Integration tests reproducing the worked examples of the paper
//! (Examples 1.1–1.3, 2.2–2.4, Theorem 2.5) across all crates.

use query_refinement::core::paper_example::{
    paper_database, scholarship_constraints, scholarship_query,
};
use query_refinement::core::prelude::*;
use query_refinement::core::{exact_distance, DistanceMeasure as DM};
use query_refinement::provenance::{
    whatif::evaluate_refinement, AnnotatedRelation, PredicateAssignment,
};
use query_refinement::relation::prelude::*;

fn ids(rel: &Relation) -> Vec<String> {
    let idx = rel.schema().index_of("ID").unwrap();
    rel.rows().iter().map(|r| r[idx].to_string()).collect()
}

#[test]
fn example_1_1_original_ranking() {
    let db = paper_database();
    let result = evaluate(&db, &scholarship_query()).unwrap();
    assert_eq!(
        ids(&top_k(&result, 6)),
        vec!["t4", "t7", "t8", "t10", "t11", "t12"]
    );
}

#[test]
fn example_1_2_engine_finds_the_so_refinement() {
    let db = paper_database();
    let result = RefinementSession::new(db.clone(), scholarship_query())
        .unwrap()
        .solve(
            &RefinementRequest::new()
                .with_constraints(scholarship_constraints())
                .with_epsilon(0.0)
                .with_distance(DistanceMeasure::Predicate),
        )
        .unwrap();
    let refined = result
        .outcome
        .refined()
        .expect("Example 1.2 refinement exists");
    // The closest refinement under DIS_pred adds 'SO' to the activity set.
    assert!(refined.assignment.categorical["Activity"].contains("SO"));
    assert!((refined.distance - 0.5).abs() < 1e-6);

    // Its output satisfies both constraints of Example 1.1.
    let output = evaluate(&db, &refined.query).unwrap();
    let top6 = top_k(&output, 6);
    let women = top6
        .rows()
        .iter()
        .filter(|r| r[top6.schema().index_of("Gender").unwrap()] == Value::text("F"))
        .count();
    assert!(women >= 3);
    let top3 = top_k(&output, 3);
    let high = top3
        .rows()
        .iter()
        .filter(|r| r[top3.schema().index_of("Income").unwrap()] == Value::text("High"))
        .count();
    assert!(high <= 1);
}

#[test]
fn example_2_2_and_2_3_distances_for_the_two_refinements() {
    let db = paper_database();
    let query = scholarship_query();
    let annotated = AnnotatedRelation::build(&db, &query).unwrap();

    let mut q_prime = PredicateAssignment::from_query(&query);
    q_prime
        .categorical
        .get_mut("Activity")
        .unwrap()
        .insert("SO".into());
    let mut q_double = PredicateAssignment::from_query(&query);
    *q_double
        .numeric
        .get_mut(&("GPA".into(), CmpOp::Ge))
        .unwrap() = 3.6;
    q_double
        .categorical
        .get_mut("Activity")
        .unwrap()
        .insert("GD".into());

    // Example 2.2: DIS_pred(Q, Q') = 0.5 < DIS_pred(Q, Q'') ≈ 0.527.
    let d_pred_prime = exact_distance(DM::Predicate, &annotated, &query, &q_prime, 3);
    let d_pred_double = exact_distance(DM::Predicate, &annotated, &query, &q_double, 3);
    assert!((d_pred_prime - 0.5).abs() < 1e-9);
    assert!(d_pred_prime < d_pred_double);

    // Example 2.3: at k = 3 the Jaccard order is reversed.
    let d_jac_prime = exact_distance(DM::JaccardTopK, &annotated, &query, &q_prime, 3);
    let d_jac_double = exact_distance(DM::JaccardTopK, &annotated, &query, &q_double, 3);
    assert!((d_jac_prime - 0.8).abs() < 1e-9);
    assert!((d_jac_double - 0.5).abs() < 1e-9);
    assert!(d_jac_double < d_jac_prime);
}

#[test]
fn example_2_4_kendall_ordering() {
    let db = paper_database();
    let query = scholarship_query();
    let annotated = AnnotatedRelation::build(&db, &query).unwrap();

    // Q'': GPA >= 3.6, Activity in {RB, GD}; Q''': GPA >= 3.6, Activity in {GD?, MO}
    // (the paper's Q''' uses {CS, MO}; CS does not appear in the data, MO does).
    let mut q_double = PredicateAssignment::from_query(&query);
    *q_double
        .numeric
        .get_mut(&("GPA".into(), CmpOp::Ge))
        .unwrap() = 3.6;
    q_double
        .categorical
        .get_mut("Activity")
        .unwrap()
        .insert("GD".into());

    let d_double = exact_distance(DM::KendallTopK, &annotated, &query, &q_double, 3);
    // The newcomer (t3) enters at rank 1, displacing two original tuples.
    assert!(d_double > 0.0);
}

#[test]
fn theorem_2_5_instance_has_no_exact_refinement() {
    let mut db = Database::new();
    db.insert(
        Relation::build("T")
            .column("X", DataType::Text)
            .column("Y", DataType::Text)
            .column("Z", DataType::Int)
            .rows(vec![
                vec!["A".into(), "C".into(), 6.into()],
                vec!["A".into(), "D".into(), 5.into()],
                vec!["A".into(), "D".into(), 4.into()],
                vec!["B".into(), "C".into(), 3.into()],
                vec!["A".into(), "C".into(), 2.into()],
                vec!["B".into(), "D".into(), 1.into()],
            ])
            .finish()
            .unwrap(),
    )
    .expect("fresh relation name");
    let query = SpjQuery::builder("T")
        .categorical_predicate("Y", ["C", "D"])
        .order_by("Z", SortOrder::Descending)
        .build()
        .unwrap();
    // Exhaustively verify that no refinement reaches 2 B-tuples in the top-3.
    let naive = naive_search(
        &db,
        &query,
        &ConstraintSet::new().with(CardinalityConstraint::at_least(
            Group::single("X", "B"),
            3,
            2,
        )),
        0.0,
        DistanceMeasure::Predicate,
        &NaiveOptions::default(),
    )
    .unwrap();
    assert!(naive.exhausted);
    assert!(naive.best.is_none());
}

#[test]
fn whatif_agrees_with_engine_for_the_milp_result() {
    // Cross-substrate consistency: the refinement returned by the MILP, when
    // re-evaluated on the relational engine, matches the provenance what-if —
    // using the session's own annotations for the what-if.
    let db = paper_database();
    let query = scholarship_query();
    let session = RefinementSession::new(db.clone(), query).unwrap();
    let result = session
        .solve(
            &RefinementRequest::new()
                .with_constraints(scholarship_constraints())
                .with_epsilon(0.0)
                .with_distance(DistanceMeasure::JaccardTopK),
        )
        .unwrap();
    let refined = result.outcome.refined().unwrap();
    let engine_output = evaluate(&db, &refined.query).unwrap();
    let snapshot = session.snapshot();
    let annotated = snapshot.annotated();
    let whatif_output = evaluate_refinement(annotated, &refined.assignment);
    assert_eq!(engine_output.len(), whatif_output.len());
    let id_idx = annotated.schema().index_of("ID").unwrap();
    let whatif_ids: Vec<String> = whatif_output
        .selected
        .iter()
        .map(|&i| annotated.tuples()[i].row[id_idx].to_string())
        .collect();
    assert_eq!(ids(&engine_output), whatif_ids);
}
