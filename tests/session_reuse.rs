//! Session-reuse contract tests: one `RefinementSession` must answer many
//! requests with exactly the results of one-shot solves, paying provenance
//! annotation exactly once (verified through the split `RefinementStats`).

use query_refinement::core::paper_example::{
    paper_database, scholarship_constraints, scholarship_query,
};
use query_refinement::core::prelude::*;
use std::time::Duration;

fn paper_session() -> RefinementSession {
    RefinementSession::new(paper_database(), scholarship_query()).expect("annotation builds")
}

fn base_request() -> RefinementRequest {
    RefinementRequest::new()
        .with_constraints(scholarship_constraints())
        .with_epsilon(0.0)
}

/// Solving the same request twice through one session yields identical
/// outcomes and distances, across all three distance measures.
#[test]
fn repeated_solves_are_identical() {
    let session = paper_session();
    for distance in DistanceMeasure::all() {
        let request = base_request().with_distance(distance);
        let first = session.solve(&request).unwrap();
        let second = session.solve(&request).unwrap();
        let a = first.outcome.refined().expect("refinement exists");
        let b = second.outcome.refined().expect("refinement exists");
        assert_eq!(a.assignment, b.assignment, "{distance:?}");
        assert_eq!(a.distance, b.distance, "{distance:?}");
        assert_eq!(a.deviation, b.deviation, "{distance:?}");
        assert_eq!(a.proven_optimal, b.proven_optimal, "{distance:?}");
    }
    assert_eq!(session.setup_stats().annotation_builds, 1);
}

/// A session solve and a one-shot solve through the deprecated
/// `RefinementEngine` shim agree on outcome, distance and deviation for all
/// three distance measures — the deprecation contract.
#[test]
#[allow(deprecated)]
fn session_matches_one_shot_engine() {
    let db = paper_database();
    let session = paper_session();
    for distance in DistanceMeasure::all() {
        let session_result = session
            .solve(&base_request().with_distance(distance))
            .unwrap();
        let engine_result = RefinementEngine::new(&db, scholarship_query())
            .with_constraints(scholarship_constraints())
            .with_epsilon(0.0)
            .with_distance(distance)
            .solve()
            .unwrap();
        let s = session_result.outcome.refined().expect("session refines");
        let e = engine_result.outcome.refined().expect("engine refines");
        assert_eq!(s.assignment, e.assignment, "{distance:?}");
        assert!(
            (s.distance - e.distance).abs() < 1e-9,
            "{distance:?}: session {} vs engine {}",
            s.distance,
            e.distance
        );
        assert_eq!(s.deviation, e.deviation, "{distance:?}");
    }
}

/// The acceptance criterion of the session redesign: sweeping N ε values (as
/// in the fig5 bench) through one session performs provenance annotation
/// exactly once, observable through the split stats — every per-request stat
/// reports zero annotation time, while a one-shot engine solve (which must
/// annotate internally) reports a non-zero one.
#[test]
#[allow(deprecated)]
fn epsilon_sweep_annotates_exactly_once() {
    let session = paper_session();
    let epsilons = [0.0, 0.25, 0.5, 0.75, 1.0];
    let results = session.sweep_epsilon(&base_request(), &epsilons).unwrap();

    assert_eq!(results.len(), epsilons.len());
    assert_eq!(
        session.setup_stats().annotation_builds,
        1,
        "the session annotates once, up front"
    );
    assert!(session.setup_stats().annotation_time > Duration::ZERO);
    for (eps, result) in epsilons.iter().zip(&results) {
        assert_eq!(
            result.stats.annotation_time,
            Duration::ZERO,
            "eps={eps}: session solves must not re-annotate"
        );
        assert_eq!(
            result.stats.setup_time, result.stats.model_build_time,
            "eps={eps}: per-request setup is the model build alone"
        );
        assert!(result.outcome.is_refined(), "eps={eps}");
    }

    // Contrast: the deprecated one-shot engine pays annotation on the solve.
    let db = paper_database();
    let one_shot = RefinementEngine::new(&db, scholarship_query())
        .with_constraints(scholarship_constraints())
        .with_epsilon(0.0)
        .solve()
        .unwrap();
    assert!(one_shot.stats.annotation_time > Duration::ZERO);
    assert_eq!(
        one_shot.stats.setup_time,
        one_shot.stats.annotation_time + one_shot.stats.model_build_time
    );
}

/// `into_refined` and `is_refined` conveniences behave like `refined`.
#[test]
fn outcome_conveniences_round_trip() {
    let session = paper_session();
    let result = session.solve(&base_request()).unwrap();
    assert!(result.outcome.is_refined());
    let by_ref = result.outcome.refined().map(|r| r.distance);
    let by_val = result.outcome.into_refined().map(|r| r.distance);
    assert_eq!(by_ref, by_val);
}
