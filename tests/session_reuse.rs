//! Session-reuse contract tests: one `RefinementSession` must answer many
//! requests with exactly the results of one-shot solves, paying provenance
//! annotation exactly once (verified through the split `RefinementStats`).

use query_refinement::core::paper_example::{
    paper_database, scholarship_constraints, scholarship_query,
};
use query_refinement::core::prelude::*;
use std::time::Duration;

fn paper_session() -> RefinementSession {
    RefinementSession::new(paper_database(), scholarship_query()).expect("annotation builds")
}

fn base_request() -> RefinementRequest {
    RefinementRequest::new()
        .with_constraints(scholarship_constraints())
        .with_epsilon(0.0)
}

/// Solving the same request twice through one session yields identical
/// outcomes and distances, across all three distance measures.
#[test]
fn repeated_solves_are_identical() {
    let session = paper_session();
    for distance in DistanceMeasure::all() {
        let request = base_request().with_distance(distance);
        let first = session.solve(&request).unwrap();
        let second = session.solve(&request).unwrap();
        let a = first.outcome.refined().expect("refinement exists");
        let b = second.outcome.refined().expect("refinement exists");
        assert_eq!(a.assignment, b.assignment, "{distance:?}");
        assert_eq!(a.distance, b.distance, "{distance:?}");
        assert_eq!(a.deviation, b.deviation, "{distance:?}");
        assert_eq!(a.proven_optimal, b.proven_optimal, "{distance:?}");
    }
    assert_eq!(session.setup_stats().annotation_builds, 1);
}

/// A session solve and a one-shot solve through the deprecated
/// `RefinementEngine` shim agree on outcome, distance and deviation for all
/// three distance measures — the deprecation contract.
#[test]
#[allow(deprecated)]
fn session_matches_one_shot_engine() {
    let db = paper_database();
    let session = paper_session();
    for distance in DistanceMeasure::all() {
        let session_result = session
            .solve(&base_request().with_distance(distance))
            .unwrap();
        let engine_result = RefinementEngine::new(&db, scholarship_query())
            .with_constraints(scholarship_constraints())
            .with_epsilon(0.0)
            .with_distance(distance)
            .solve()
            .unwrap();
        let s = session_result.outcome.refined().expect("session refines");
        let e = engine_result.outcome.refined().expect("engine refines");
        assert_eq!(s.assignment, e.assignment, "{distance:?}");
        assert!(
            (s.distance - e.distance).abs() < 1e-9,
            "{distance:?}: session {} vs engine {}",
            s.distance,
            e.distance
        );
        assert_eq!(s.deviation, e.deviation, "{distance:?}");
    }
}

/// The acceptance criterion of the session redesign: sweeping N ε values (as
/// in the fig5 bench) through one session performs provenance annotation
/// exactly once, observable through the split stats — every per-request stat
/// reports zero annotation time, while a one-shot engine solve (which must
/// annotate internally) reports a non-zero one.
#[test]
#[allow(deprecated)]
fn epsilon_sweep_annotates_exactly_once() {
    let session = paper_session();
    let epsilons = [0.0, 0.25, 0.5, 0.75, 1.0];
    let results = session.sweep_epsilon(&base_request(), &epsilons).unwrap();

    assert_eq!(results.len(), epsilons.len());
    assert_eq!(
        session.setup_stats().annotation_builds,
        1,
        "the session annotates once, up front"
    );
    assert!(session.setup_stats().annotation_time > Duration::ZERO);
    for (eps, result) in epsilons.iter().zip(&results) {
        assert_eq!(
            result.stats.annotation_time,
            Duration::ZERO,
            "eps={eps}: session solves must not re-annotate"
        );
        assert_eq!(
            result.stats.setup_time, result.stats.model_build_time,
            "eps={eps}: per-request setup is the model build alone"
        );
        assert!(result.outcome.is_refined(), "eps={eps}");
    }

    // Contrast: the deprecated one-shot engine pays annotation on the solve.
    let db = paper_database();
    let one_shot = RefinementEngine::new(&db, scholarship_query())
        .with_constraints(scholarship_constraints())
        .with_epsilon(0.0)
        .solve()
        .unwrap();
    assert!(one_shot.stats.annotation_time > Duration::ZERO);
    assert_eq!(
        one_shot.stats.setup_time,
        one_shot.stats.annotation_time + one_shot.stats.model_build_time
    );
}

/// `into_refined` and `is_refined` conveniences behave like `refined`.
#[test]
fn outcome_conveniences_round_trip() {
    let session = paper_session();
    let result = session.solve(&base_request()).unwrap();
    assert!(result.outcome.is_refined());
    let by_ref = result.outcome.refined().map(|r| r.distance);
    let by_val = result.outcome.into_refined().map(|r| r.distance);
    assert_eq!(by_ref, by_val);
}

/// Warm-started node LPs are the common case on a fig3-style workload, and
/// they cut total simplex pivots by a large factor vs. forcing every node LP
/// cold — the acceptance criterion of the warm-start redesign, pinned through
/// the new `RefinementStats` fields.
#[test]
fn warm_starts_cut_fig3_workload_pivots() {
    use query_refinement::datagen::Workload;
    use query_refinement::milp::SolverOptions;

    let w = Workload::astronauts(100, 20240317);
    let constraints = ConstraintSet::new().with(w.constraint_with_bound(1, 5, Some(2)));
    let session = RefinementSession::new(w.db.clone(), w.query.clone()).unwrap();
    let base = RefinementRequest::new()
        .with_constraints(constraints)
        .with_epsilon(0.5)
        .with_solver_options(SolverOptions {
            time_limit: Some(Duration::from_secs(60)),
            max_nodes: 20_000,
            ..SolverOptions::default()
        });

    let warm = session.solve(&base).unwrap();
    let mut cold_opts = base.solver_options.clone();
    cold_opts.use_warm_start = false;
    let cold_request = base.clone().with_solver_options(cold_opts);
    let cold = session.solve(&cold_request).unwrap();
    // Solves are deterministic (pinned above by `repeated_solves_are_identical`),
    // so a second run of each measures only timing noise: take the min per
    // side so a single scheduler stall on a busy CI box cannot flip the
    // wall-clock comparison below.
    let warm_time = warm
        .stats
        .solver_time
        .min(session.solve(&base).unwrap().stats.solver_time);
    let cold_time = cold
        .stats
        .solver_time
        .min(session.solve(&cold_request).unwrap().stats.solver_time);

    eprintln!(
        "warm: pivots {} lps {} (warm {} cold {}) etas {} in {:?}, cold: pivots {} lps {} etas {} in {:?}",
        warm.stats.simplex_iterations,
        warm.stats.lp_solves,
        warm.stats.warm_lp_solves,
        warm.stats.cold_lp_solves,
        warm.stats.eta_updates,
        warm.stats.solver_time,
        cold.stats.simplex_iterations,
        cold.stats.lp_solves,
        cold.stats.eta_updates,
        cold.stats.solver_time,
    );
    assert_eq!(
        warm.outcome.is_refined(),
        cold.outcome.is_refined(),
        "warm starts must not change the refinement outcome"
    );
    assert_eq!(cold.stats.warm_lp_solves, 0);
    assert!(
        warm.stats.warm_lp_solves + warm.stats.cold_lp_solves == warm.stats.lp_solves,
        "warm/cold split must partition the LP count"
    );
    let warm_share = warm.stats.warm_lp_solves as f64 / warm.stats.lp_solves.max(1) as f64;
    assert!(warm_share >= 0.8, "warm share {warm_share:.2}");
    // The degenerate alternative optima of these LPs mean the two searches
    // can take different trees, so compare per-LP pivot cost (the measured
    // gap is ~12x; pin conservatively) as well as the total.
    let warm_per_lp = warm.stats.simplex_iterations as f64 / warm.stats.lp_solves.max(1) as f64;
    let cold_per_lp = cold.stats.simplex_iterations as f64 / cold.stats.lp_solves.max(1) as f64;
    assert!(
        cold_per_lp >= 5.0 * warm_per_lp,
        "per-LP pivots: warm {warm_per_lp:.1} vs cold {cold_per_lp:.1}"
    );
    assert!(
        cold.stats.simplex_iterations as f64 >= 3.0 * warm.stats.simplex_iterations as f64,
        "total pivots: warm {} vs cold {}",
        warm.stats.simplex_iterations,
        cold.stats.simplex_iterations
    );
    // The sparse rewrite must convert the pivot reduction into actual work
    // and wall-clock wins, not just pivot-count parity: eta updates are the
    // factorized solver's per-pivot work unit (the measured gap is ~4-5x;
    // pin conservatively), and solver time must strictly improve (the
    // measured gap is ~3.5x, far beyond the noise left after min-of-two).
    assert!(
        cold.stats.eta_updates >= 2 * warm.stats.eta_updates.max(1),
        "eta-update work proxy: warm {} vs cold {}",
        warm.stats.eta_updates,
        cold.stats.eta_updates
    );
    assert!(
        warm_time < cold_time,
        "wall-clock: warm {warm_time:?} vs cold {cold_time:?}"
    );
}
