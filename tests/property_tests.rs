//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use query_refinement::core::paper_example::{paper_database, scholarship_query};
use query_refinement::core::{
    jaccard_topk_distance, kendall_topk_distance, CardinalityConstraint, ConstraintSet,
    DistanceMeasure, Group, NaiveMode, RefinementRequest, RefinementSession,
};
use query_refinement::milp::{LinExpr, Model, Sense, SolveStatus, Solver};
use query_refinement::provenance::{whatif::evaluate_refinement, PredicateAssignment};
use query_refinement::relation::csv::{read_csv_str, write_csv_string};
use query_refinement::relation::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The provenance what-if evaluation agrees with the relational engine on
    /// every refinement of the scholarship query, using a session's shared
    /// annotations for the what-if side.
    #[test]
    fn whatif_matches_engine_for_any_refinement(
        activities in proptest::collection::btree_set(
            prop_oneof!["RB", "SO", "GD", "MO", "TU"].prop_map(String::from), 0..5),
        gpa_tenths in 34u32..41,
    ) {
        let db = paper_database();
        let query = scholarship_query();
        let session = RefinementSession::new(db.clone(), query.clone()).unwrap();
        let snapshot = session.snapshot();
        let annotated = snapshot.annotated();
        let mut assignment = PredicateAssignment::from_query(&query);
        assignment.categorical.insert("Activity".to_string(), activities.clone());
        let gpa = gpa_tenths as f64 / 10.0;
        assignment.numeric.insert(("GPA".to_string(), CmpOp::Ge), gpa);

        let refined_query = assignment.apply_to(&query);
        let engine_output = evaluate(&db, &refined_query).unwrap();
        let whatif_output = evaluate_refinement(annotated, &assignment);
        prop_assert_eq!(engine_output.len(), whatif_output.len());

        let id_idx = annotated.schema().index_of("ID").unwrap();
        let whatif_ids: Vec<String> = whatif_output
            .selected
            .iter()
            .map(|&i| annotated.tuples()[i].row[id_idx].to_string())
            .collect();
        let engine_ids: Vec<String> = engine_output
            .rows()
            .iter()
            .map(|r| r[engine_output.schema().index_of("ID").unwrap()].to_string())
            .collect();
        prop_assert_eq!(whatif_ids, engine_ids);
    }

    /// The request builder stores exactly what it is given, and label
    /// round-trips hold for every distance measure and naive mode spelled in
    /// any ASCII case.
    #[test]
    fn request_builder_and_label_round_trips(
        epsilon in 0.0f64..2.0,
        measure_idx in 0usize..3,
        mode in any::<bool>(),
        uppercase in any::<bool>(),
    ) {
        let measure = DistanceMeasure::all()[measure_idx];
        let request = RefinementRequest::new()
            .with_epsilon(epsilon)
            .with_distance(measure)
            .with_constraint(CardinalityConstraint::at_least(
                Group::single("Gender", "F"), 6, 3));
        prop_assert_eq!(request.epsilon, epsilon);
        prop_assert_eq!(request.distance, measure);
        prop_assert_eq!(request.constraints.len(), 1);

        let label = if uppercase {
            measure.to_string().to_ascii_uppercase()
        } else {
            measure.to_string().to_ascii_lowercase()
        };
        prop_assert_eq!(label.parse::<DistanceMeasure>().unwrap(), measure);

        let naive_mode = if mode { NaiveMode::Provenance } else { NaiveMode::Database };
        let label = if uppercase {
            naive_mode.to_string().to_ascii_uppercase()
        } else {
            naive_mode.to_string().to_ascii_lowercase()
        };
        prop_assert_eq!(label.parse::<NaiveMode>().unwrap(), naive_mode);
    }

    /// Deviation (Definition 2.6) is always in [0, 1] for single-constraint
    /// sets and is zero exactly when the constraint is satisfied.
    #[test]
    fn deviation_is_normalised(k in 1usize..20, n in 1usize..20, observed in 0usize..25, lower in any::<bool>()) {
        prop_assume!(n <= k);
        let group = Group::single("Gender", "F");
        let constraint = if lower {
            CardinalityConstraint::at_least(group, k, n)
        } else {
            CardinalityConstraint::at_most(group, k, n)
        };
        let set = ConstraintSet::new().with(constraint.clone());
        let dev = set.deviation(&[observed]);
        prop_assert!((0.0..=1.0).contains(&dev));
        prop_assert_eq!(dev == 0.0, constraint.is_satisfied(observed));
    }

    /// The top-k Jaccard distance is a symmetric, bounded dissimilarity; the
    /// Kendall distance is non-negative and zero on identical lists.
    #[test]
    fn outcome_distances_are_well_behaved(
        a in proptest::collection::vec(0u8..12, 1..8),
        b in proptest::collection::vec(0u8..12, 1..8),
    ) {
        // De-duplicate while preserving order (top-k lists have no repeats).
        let dedup = |xs: &[u8]| {
            let mut seen = BTreeSet::new();
            xs.iter().copied().filter(|x| seen.insert(*x)).collect::<Vec<_>>()
        };
        let a = dedup(&a);
        let b = dedup(&b);
        let j_ab = jaccard_topk_distance(&a, &b);
        let j_ba = jaccard_topk_distance(&b, &a);
        prop_assert!((j_ab - j_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&j_ab));
        prop_assert_eq!(jaccard_topk_distance(&a, &a), 0.0);
        prop_assert_eq!(kendall_topk_distance(&a, &a), 0.0);
        prop_assert!(kendall_topk_distance(&a, &b) >= 0.0);
    }

    /// CSV round trip: writing a relation and reading it back preserves rows.
    #[test]
    fn csv_round_trip(rows in proptest::collection::vec((0i64..1000, -100.0f64..100.0, "[a-z ,]{0,12}"), 1..30)) {
        let mut rel = Relation::build("t")
            .column("id", DataType::Int)
            .column("score", DataType::Float)
            .column("label", DataType::Text)
            .finish()
            .unwrap();
        for (id, score, label) in &rows {
            // Round the float to avoid display-precision mismatches.
            let score = (score * 100.0).round() / 100.0;
            rel.push_row(vec![Value::int(*id), Value::float(score), Value::text(label.trim())]).unwrap();
        }
        let text = write_csv_string(&rel);
        let back = read_csv_str(
            "t",
            &[("id", DataType::Int), ("score", DataType::Float), ("label", DataType::Text)],
            &text,
        )
        .unwrap();
        prop_assert_eq!(back.len(), rel.len());
        for (orig, parsed) in rel.rows().iter().zip(back.rows()) {
            prop_assert_eq!(&orig[0], &parsed[0]);
            prop_assert_eq!(&orig[1], &parsed[1]);
            // Text may lose surrounding whitespace (values are trimmed on read).
            let orig_label = orig[2].to_string();
            let parsed_label = parsed[2].to_string();
            prop_assert_eq!(orig_label.trim(), parsed_label.trim());
        }
    }

    /// MILP solver sanity on a family of two-variable problems with a known
    /// optimum: maximise x + y over x <= a, y <= b, x + y <= c.
    #[test]
    fn milp_two_variable_box_problems(a in 0i64..12, b in 0i64..12, c in 0i64..20) {
        let mut model = Model::new("box");
        let x = model.add_integer("x", 0.0, a as f64);
        let y = model.add_integer("y", 0.0, b as f64);
        model.add_constraint("sum", LinExpr::from(x) + LinExpr::from(y), Sense::Le, c as f64);
        model.set_objective(LinExpr::term(x, -1.0) + LinExpr::term(y, -1.0));
        let solution = Solver::default().solve(&model).unwrap();
        prop_assert_eq!(solution.status, SolveStatus::Optimal);
        let expected = (a + b).min(c) as f64;
        prop_assert!((solution.objective + expected).abs() < 1e-6,
            "expected {} got {}", expected, -solution.objective);
    }
}
