//! Chained-resume parity at the session level: a solve chopped into many
//! interrupted segments — each continued with [`RefinementSession::resume`]
//! under a fresh [`SolveControl`] — must converge to the same refinement as
//! one uninterrupted solve, without re-exploring pruned subtrees.
//!
//! Two layers of evidence:
//!
//! * a property test segmenting solves on two generated datasets by a
//!   deterministic *node budget* (machine-speed independent), asserting
//!   refined-query and distance parity plus the node-accounting bound
//!   `chain_nodes <= full_nodes + segments` (re-processing at most one
//!   interrupted node per segment is the only admissible overhead), and
//! * a pinned fig3-astronaut run chaining small wall-clock budgets — the
//!   paper's interactive-latency setting — to a terminal answer.

use proptest::prelude::*;
use query_refinement::core::prelude::*;
use query_refinement::datagen::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Observer that trips its cancel token after a fixed number of
/// branch-and-bound nodes — a deterministic interruption that does not
/// depend on wall-clock speed.
struct CancelAfterNodes {
    token: CancelToken,
    threshold: usize,
    seen: AtomicUsize,
}

impl SolveObserver for CancelAfterNodes {
    fn node_processed(&self, _progress: &SolveProgress) {
        if self.seen.fetch_add(1, Ordering::Relaxed) + 1 >= self.threshold {
            self.token.cancel();
        }
    }
}

/// A fresh control that interrupts itself after `nodes` processed nodes.
fn node_budget(nodes: usize) -> SolveControl {
    let token = CancelToken::new();
    SolveControl::new()
        .with_cancel_token(token.clone())
        .with_observer(Arc::new(CancelAfterNodes {
            token,
            threshold: nodes,
            seen: AtomicUsize::new(0),
        }))
}

/// Everything a chained run accumulates across its segments.
struct ChainRun {
    result: RefinementResult,
    segments: usize,
    chain_nodes: usize,
    nodes_restored: usize,
}

/// Drive `request` to a terminal answer in interrupted segments, each under
/// a fresh control produced by `control` (which receives the node count of
/// the previous segment, `None` for the first, so callers can escalate a
/// budget that made no progress).
fn chain_to_completion(
    session: &RefinementSession,
    request: &RefinementRequest,
    max_segments: usize,
    mut control: impl FnMut(Option<usize>) -> SolveControl,
) -> ChainRun {
    let mut segments = 1;
    let mut result = session
        .solve(&request.clone().with_control(control(None)))
        .expect("segment 1 solves");
    let mut chain_nodes = result.stats.nodes;
    let mut nodes_restored = result.stats.nodes_restored;
    while result.outcome.is_interrupted() {
        // An interrupted solve with an empty frontier has nothing left to
        // explore; its incumbent is already the final answer.
        let Some(resume) = result.resume.take() else {
            break;
        };
        assert!(segments <= max_segments, "chain failed to converge");
        segments += 1;
        let prev_nodes = result.stats.nodes;
        result = session
            .resume(&resume, &control(Some(prev_nodes)))
            .expect("resume continues the search");
        assert_eq!(result.stats.resumed_solves, 1);
        chain_nodes += result.stats.nodes;
        nodes_restored += result.stats.nodes_restored;
    }
    ChainRun {
        result,
        segments,
        chain_nodes,
        nodes_restored,
    }
}

/// Sessions are cached per dataset: provenance annotation dominates setup
/// cost and is identical across property-test cases.
fn astronauts() -> &'static RefinementSession {
    static SESSION: OnceLock<RefinementSession> = OnceLock::new();
    SESSION.get_or_init(|| {
        let w = Workload::astronauts(48, 7);
        RefinementSession::new(w.db, w.query).expect("astronaut session builds")
    })
}

fn law_students() -> &'static RefinementSession {
    static SESSION: OnceLock<RefinementSession> = OnceLock::new();
    SESSION.get_or_init(|| {
        let w = Workload::law_students(48, 7);
        RefinementSession::new(w.db, w.query).expect("law-student session builds")
    })
}

/// The per-dataset request: constraint `index` 1 of Table 6 at top-`k`,
/// with the bound tightened enough that the original query violates it.
fn parity_request(
    dataset: usize,
    k: usize,
    bound: usize,
) -> (&'static RefinementSession, RefinementRequest) {
    let (session, workload) = match dataset {
        0 => (astronauts(), Workload::astronauts(48, 7)),
        _ => (law_students(), Workload::law_students(48, 7)),
    };
    let constraints = ConstraintSet::new().with(workload.constraint_with_bound(1, k, Some(bound)));
    let request = RefinementRequest::new()
        .with_constraints(constraints)
        .with_epsilon(0.5);
    (session, request)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Chopping a solve into node-budget segments and resuming each one
    /// reaches exactly the refinement of the uninterrupted solve, and the
    /// chain's total node count stays within one re-processed node per
    /// segment of the uninterrupted count.
    #[test]
    fn chained_segments_match_the_uninterrupted_solve(
        dataset in 0usize..2,
        k in 4usize..7,
        bound in 2usize..4,
        budget in 4usize..12,
    ) {
        let (session, request) = parity_request(dataset, k, bound);
        let full = session.solve(&request).expect("uninterrupted solve");
        prop_assert!(!full.outcome.is_interrupted());

        // With a budget of b nodes a segment makes at least b-1 nodes of new
        // progress (one re-processed interrupted node), so the chain cannot
        // legitimately need more segments than the uninterrupted node count.
        let chain = chain_to_completion(session, &request, full.stats.nodes + 16, |_| {
            node_budget(budget)
        });

        // Both runs prove the same optimal *value*. The argmin assignment is
        // not asserted: on ties between equally-close refinements the two
        // (equally correct) search trees may surface different witnesses.
        match (full.outcome.refined(), chain.result.outcome.refined()) {
            (Some(expected), Some(got)) => {
                prop_assert!((got.distance - expected.distance).abs() < 1e-9,
                    "chained distance {} vs uninterrupted {}", got.distance, expected.distance);
                prop_assert_eq!(got.proven_optimal, expected.proven_optimal);
            }
            (None, None) => {} // both proved no refinement exists
            (expected, got) => prop_assert!(false,
                "outcome mismatch: uninterrupted {:?} vs chained {:?}", expected, got),
        }
        if chain.segments > 1 {
            prop_assert!(chain.nodes_restored > 0,
                "a multi-segment chain must have restored a frontier");
        }
        // Node accounting: the checkpoint moves the frontier verbatim, so a
        // chain never re-explores a pruned subtree — but it does not replay
        // the uninterrupted run node for node. A resumed segment refactorizes
        // where the uninterrupted workspace reused a live factorization, and
        // on these massively degenerate big-M LPs the ~1e-16 difference flips
        // ratio-test ties onto alternative optima, branching a different (yet
        // equally correct) tree. Exact `full + segments` accounting is pinned
        // at the MILP layer on tie-free models (crates/milp/tests/resume.rs);
        // here we bound the drift multiplicatively, which still fails loudly
        // if resume ever regresses to re-searching from the root.
        prop_assert!(chain.chain_nodes <= 3 * full.stats.nodes + chain.segments,
            "chain processed {} nodes vs {} uninterrupted ({} segments)",
            chain.chain_nodes, full.stats.nodes, chain.segments);
    }
}

/// The acceptance pin: on the fig3 astronaut workload, a chain of small
/// wall-clock budgets (each segment also capped by a node budget so the
/// test interrupts deterministically on arbitrarily fast machines) reaches
/// the same objective as one uninterrupted solve, restoring checkpointed
/// frontiers along the way.
#[test]
fn fig3_astronaut_chain_of_small_budgets_matches_one_solve() {
    let w = Workload::astronauts(100, 20240317);
    let constraints = ConstraintSet::new().with(w.constraint_with_bound(1, 5, Some(2)));
    let session = RefinementSession::new(w.db, w.query).expect("fig3 session builds");
    let request = RefinementRequest::new()
        .with_constraints(constraints)
        .with_epsilon(0.5);

    let full = session.solve(&request).expect("uninterrupted solve");
    let expected = full.outcome.refined().expect("fig3 has a refinement");
    assert!(
        full.stats.nodes > 40,
        "instance too easy ({} nodes) to exercise chaining",
        full.stats.nodes
    );

    // Each segment gets a 100 ms wall-clock budget and a 40-node budget,
    // whichever trips first: real interactive-latency slices on ordinary
    // machines, still guaranteed to interrupt on arbitrarily fast ones. On a
    // machine so slow a whole slice fits no node at all (debug builds), the
    // next segment drops the timer and runs on the node budget alone, so the
    // chain always makes progress.
    let chain = chain_to_completion(&session, &request, full.stats.nodes + 16, |prev| {
        let budget = node_budget(40);
        match prev {
            Some(0) => budget,
            _ => budget.with_time_limit(Duration::from_millis(100)),
        }
    });

    assert!(
        chain.segments > 1,
        "the budgets never interrupted the solve"
    );
    assert!(chain.nodes_restored > 0, "no frontier was ever restored");
    let got = chain.result.outcome.refined().expect("chain completes");
    assert!(
        (got.distance - expected.distance).abs() < 1e-9,
        "chained distance {} vs uninterrupted {}",
        got.distance,
        expected.distance
    );
    assert!(
        (got.objective - expected.objective).abs() < 1e-9,
        "chained objective {} vs uninterrupted {}",
        got.objective,
        expected.objective
    );
    // Multiplicative drift bound, not node-for-node accounting — see the
    // property test above for why degenerate-tie flips at segment boundaries
    // make the latter a per-model guarantee.
    assert!(
        chain.chain_nodes <= 3 * full.stats.nodes + chain.segments,
        "chain processed {} nodes vs {} uninterrupted ({} segments)",
        chain.chain_nodes,
        full.stats.nodes,
        chain.segments
    );
}
